// Package stats provides the distribution machinery behind the paper's
// analyzers: fixed-width binned histograms over an [min,max,step] analysis
// period (with explicit underflow/overflow bins), the cumulative views used
// by the paper's three distribution operators, quantile extraction, running
// summaries, and the (threshold × window) percentile surfaces plotted in
// Figures 8 and 9.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram bins samples into fixed-width bins over [Min, Max] plus an
// underflow bin (-inf, Min] ... the paper's analysis period notation
// <min, max, step> divides the interval into bins of width step, and values
// outside the interval land in (-inf, min] and (max, +inf) bins. Bin k for
// k in [1, n] covers (Min+(k-1)*Step, Min+k*Step]; bin 0 is underflow and
// bin n+1 is overflow.
type Histogram struct {
	Min, Max, Step float64
	counts         []uint64
	total          uint64
	nan            uint64
	sum            float64
	sumSq          float64
	lo, hi         float64
}

// NewHistogram builds a histogram for the analysis period <min, max, step>.
// It returns an error when the period is malformed (non-positive step, max
// not above min) rather than panicking, because periods frequently come from
// user-written LOC formulas.
func NewHistogram(min, max, step float64) (*Histogram, error) {
	if math.IsNaN(min) || math.IsNaN(max) || math.IsNaN(step) {
		return nil, fmt.Errorf("stats: NaN in analysis period <%v, %v, %v>", min, max, step)
	}
	if step <= 0 {
		return nil, fmt.Errorf("stats: non-positive step %v", step)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: max %v not greater than min %v", max, min)
	}
	nf := math.Ceil((max - min) / step * (1 - 1e-12))
	if nf > 1<<22 {
		return nil, fmt.Errorf("stats: analysis period <%v, %v, %v> yields %.0f bins, too many", min, max, step, nf)
	}
	n := int(nf)
	if n < 1 {
		n = 1
	}
	return &Histogram{
		Min: min, Max: max, Step: step,
		counts: make([]uint64, n+2),
		lo:     math.Inf(1), hi: math.Inf(-1),
	}, nil
}

// MustHistogram is NewHistogram for statically known-good periods.
func MustHistogram(min, max, step float64) *Histogram {
	h, err := NewHistogram(min, max, step)
	if err != nil {
		panic(err)
	}
	return h
}

// NumBins reports the number of interior bins (excluding under/overflow).
func (h *Histogram) NumBins() int { return len(h.counts) - 2 }

// Add records one sample. NaN samples are counted separately and excluded
// from every distribution view (they arise from 0/0 in ratio formulas over
// degenerate windows).
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		h.nan++
		return
	}
	h.total++
	h.sum += v
	h.sumSq += v * v
	if v < h.lo {
		h.lo = v
	}
	if v > h.hi {
		h.hi = v
	}
	h.counts[h.binFor(v)]++
}

func (h *Histogram) binFor(v float64) int {
	if v <= h.Min {
		return 0
	}
	if v > h.Max {
		return len(h.counts) - 1
	}
	k := int(math.Ceil((v - h.Min) / h.Step))
	if k < 1 {
		k = 1
	}
	if k > h.NumBins() {
		k = h.NumBins()
	}
	return k
}

// Count returns the raw count in bin k (0 = underflow, NumBins()+1 = overflow).
func (h *Histogram) Count(k int) uint64 { return h.counts[k] }

// Total returns the number of non-NaN samples.
func (h *Histogram) Total() uint64 { return h.total }

// NaNs returns the number of NaN samples that were dropped.
func (h *Histogram) NaNs() uint64 { return h.nan }

// Mean returns the sample mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// StdDev returns the population standard deviation, or NaN when empty.
func (h *Histogram) StdDev() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	m := h.Mean()
	v := h.sumSq/float64(h.total) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// ObservedMin returns the smallest non-NaN sample, +Inf when empty.
func (h *Histogram) ObservedMin() float64 { return h.lo }

// ObservedMax returns the largest non-NaN sample, -Inf when empty.
func (h *Histogram) ObservedMax() float64 { return h.hi }

// UpperEdge returns the inclusive upper edge of bin k. For the underflow bin
// it is Min; for the overflow bin it is +Inf.
func (h *Histogram) UpperEdge(k int) float64 {
	switch {
	case k <= 0:
		return h.Min
	case k > h.NumBins():
		return math.Inf(1)
	default:
		e := h.Min + float64(k)*h.Step
		if e > h.Max {
			e = h.Max
		}
		return e
	}
}

// Fractions returns per-bin normalized frequencies (the paper's ↑ operator).
// The slice has NumBins()+2 entries, underflow first. An empty histogram
// returns all zeros.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// CDF returns, for each bin edge, the fraction of samples ≤ that edge (the
// paper's ≤ distribution operator). Entry k corresponds to UpperEdge(k); the
// final entry is always 1 for a non-empty histogram.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// CCDF returns, for each bin lower edge, the fraction of samples ≥ that edge
// (the paper's ≥ distribution operator). Entry k corresponds to the lower
// edge of bin k, i.e. UpperEdge(k-1); entry 0 is always 1 for non-empty data.
func (h *Histogram) CCDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	var cum uint64
	for i := len(h.counts) - 1; i >= 0; i-- {
		cum += h.counts[i]
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// QuantileUpper returns the smallest bin upper edge e such that at least
// fraction q of samples are ≤ e. This is how the paper extracts the "80% of
// instances are lower than" vertices for the Figure 8 surface. q outside
// (0,1] is clamped. Returns NaN when empty.
func (h *Histogram) QuantileUpper(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for k, c := range h.counts {
		cum += c
		if cum >= need {
			return h.UpperEdge(k)
		}
	}
	return math.Inf(1)
}

// QuantileLower returns the largest bin lower edge e such that at least
// fraction q of samples are ≥ e (the Figure 9 surface: "80% of instances are
// higher than"). Returns NaN when empty.
func (h *Histogram) QuantileLower(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for k := len(h.counts) - 1; k >= 0; k-- {
		cum += h.counts[k]
		if cum >= need {
			return h.UpperEdge(k - 1) // lower edge of bin k
		}
	}
	return math.Inf(-1)
}

// Merge adds other's samples into h. The analysis periods must match exactly.
func (h *Histogram) Merge(other *Histogram) error {
	if other.Min != h.Min || other.Max != h.Max || other.Step != h.Step {
		return fmt.Errorf("stats: merging histograms with different periods <%v,%v,%v> vs <%v,%v,%v>",
			h.Min, h.Max, h.Step, other.Min, other.Max, other.Step)
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.total += other.total
	h.nan += other.nan
	h.sum += other.sum
	h.sumSq += other.sumSq
	if other.lo < h.lo {
		h.lo = other.lo
	}
	if other.hi > h.hi {
		h.hi = other.hi
	}
	return nil
}

// String renders a compact summary, useful in logs and error messages.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist<%g,%g,%g> n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		h.Min, h.Max, h.Step, h.total, h.Mean(), h.StdDev(), h.lo, h.hi)
}

// Render writes a gnuplot-style two-column table of the requested view
// ("hist", "cdf" or "ccdf") with one row per bin edge.
func (h *Histogram) Render(view string) (string, error) {
	var vals []float64
	switch view {
	case "hist":
		vals = h.Fractions()
	case "cdf":
		vals = h.CDF()
	case "ccdf":
		vals = h.CCDF()
	default:
		return "", fmt.Errorf("stats: unknown view %q (want hist, cdf or ccdf)", view)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s of %d samples over <%g, %g, %g>\n", view, h.total, h.Min, h.Max, h.Step)
	for k, v := range vals {
		edge := h.UpperEdge(k)
		if view == "ccdf" {
			edge = h.UpperEdge(k - 1)
		}
		fmt.Fprintf(&b, "%g\t%.6f\n", edge, v)
	}
	return b.String(), nil
}

// Sample is a small helper holding raw observations when exact quantiles are
// needed (e.g. in tests comparing against binned quantiles).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation, ignoring NaN.
func (s *Sample) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.xs = append(s.xs, v)
	s.sorted = false
}

// Len reports the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Quantile returns the q-th quantile (nearest-rank), NaN when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.xs[idx]
}

// Mean returns the arithmetic mean, NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.xs {
		sum += v
	}
	return sum / float64(len(s.xs))
}
