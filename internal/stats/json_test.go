package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := MustHistogram(0, 10, 0.5)
	for _, v := range []float64{-3, 0.2, 0.2, 4.9, 7.3, 11, math.NaN()} {
		h.Add(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Total() != h.Total() || back.NaNs() != h.NaNs() {
		t.Fatalf("totals: got %d/%d want %d/%d", back.Total(), back.NaNs(), h.Total(), h.NaNs())
	}
	if back.Mean() != h.Mean() || back.StdDev() != h.StdDev() {
		t.Errorf("moments differ: %v/%v vs %v/%v", back.Mean(), back.StdDev(), h.Mean(), h.StdDev())
	}
	if back.ObservedMin() != h.ObservedMin() || back.ObservedMax() != h.ObservedMax() {
		t.Errorf("observed range differs")
	}
	for k := 0; k < h.NumBins()+2; k++ {
		if back.Count(k) != h.Count(k) {
			t.Errorf("bin %d: got %d want %d", k, back.Count(k), h.Count(k))
		}
	}
	// Marshaling the reconstruction reproduces the original bytes: the
	// property the content-addressed run cache relies on.
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Errorf("round-trip not byte-stable:\n%s\n%s", b, b2)
	}
}

func TestHistogramJSONEmpty(t *testing.T) {
	h := MustHistogram(0, 1, 0.1)
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if back.Total() != 0 || !math.IsInf(back.ObservedMin(), 1) || !math.IsInf(back.ObservedMax(), -1) {
		t.Errorf("empty histogram sentinels not restored: %v", back.String())
	}
}

func TestHistogramJSONRejectsBadShape(t *testing.T) {
	cases := []string{
		`{"min":0,"max":1,"step":0.5,"counts":[1,2]}`,     // wrong bin count
		`{"min":0,"max":1,"step":-1,"counts":[0,0,0,0]}`,  // bad period
		`{"min":0,"max":1,"step":0.5,"counts":[1,0,0,0]}`, // samples but no lo/hi
	}
	for _, src := range cases {
		var h Histogram
		if err := json.Unmarshal([]byte(src), &h); err == nil {
			t.Errorf("unmarshal %s: want error, got none", src)
		}
	}
}
