package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramErrors(t *testing.T) {
	cases := []struct{ min, max, step float64 }{
		{0, 10, 0},
		{0, 10, -1},
		{10, 10, 1},
		{10, 5, 1},
		{math.NaN(), 10, 1},
		{0, math.NaN(), 1},
		{0, 10, math.NaN()},
		{0, 1e18, 1e-9}, // too many bins
	}
	for _, c := range cases {
		if _, err := NewHistogram(c.min, c.max, c.step); err == nil {
			t.Errorf("NewHistogram(%v, %v, %v): expected error", c.min, c.max, c.step)
		}
	}
}

func TestHistogramPaperExample(t *testing.T) {
	// The paper's formula (1) period: <40, 80, 5> gives bins
	// (-inf,40], (40,45], ..., (75,80], (80,+inf) — 8 interior bins.
	h := MustHistogram(40, 80, 5)
	if h.NumBins() != 8 {
		t.Fatalf("NumBins = %d, want 8", h.NumBins())
	}
	h.Add(40)   // underflow (inclusive upper edge of underflow bin)
	h.Add(40.1) // bin 1
	h.Add(45)   // bin 1 (edges are (lo, hi])
	h.Add(45.1) // bin 2
	h.Add(80)   // bin 8
	h.Add(80.5) // overflow
	h.Add(-3)   // underflow
	wantCounts := []uint64{2, 2, 1, 0, 0, 0, 0, 0, 1, 1}
	for k, want := range wantCounts {
		if got := h.Count(k); got != want {
			t.Errorf("bin %d count = %d, want %d", k, got, want)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramNaN(t *testing.T) {
	h := MustHistogram(0, 10, 1)
	h.Add(math.NaN())
	h.Add(5)
	if h.NaNs() != 1 || h.Total() != 1 {
		t.Fatalf("NaNs=%d Total=%d, want 1,1", h.NaNs(), h.Total())
	}
	if h.Mean() != 5 {
		t.Errorf("Mean = %v, want 5 (NaN excluded)", h.Mean())
	}
}

func TestHistogramMoments(t *testing.T) {
	h := MustHistogram(0, 100, 1)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(v)
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := h.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if h.ObservedMin() != 2 || h.ObservedMax() != 9 {
		t.Errorf("observed range = [%v, %v], want [2, 9]", h.ObservedMin(), h.ObservedMax())
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := MustHistogram(0, 10, 1)
	if !math.IsNaN(h.Mean()) || !math.IsNaN(h.StdDev()) {
		t.Error("empty histogram moments should be NaN")
	}
	if !math.IsNaN(h.QuantileUpper(0.8)) || !math.IsNaN(h.QuantileLower(0.8)) {
		t.Error("empty histogram quantiles should be NaN")
	}
	for _, v := range h.CDF() {
		if v != 0 {
			t.Error("empty CDF should be all zeros")
		}
	}
}

func TestCDFAndCCDF(t *testing.T) {
	h := MustHistogram(0, 4, 1)
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Add(v)
	}
	cdf := h.CDF()
	// bins: underflow, (0,1], (1,2], (2,3], (3,4], overflow
	want := []float64{0, 0.25, 0.5, 0.75, 1, 1}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v, want %v", cdf, want)
		}
	}
	ccdf := h.CCDF()
	wantC := []float64{1, 1, 0.75, 0.5, 0.25, 0}
	for i := range wantC {
		if math.Abs(ccdf[i]-wantC[i]) > 1e-12 {
			t.Fatalf("CCDF = %v, want %v", ccdf, wantC)
		}
	}
}

func TestQuantiles(t *testing.T) {
	h := MustHistogram(0, 10, 1)
	for i := 1; i <= 10; i++ {
		h.Add(float64(i) - 0.5) // one sample per bin
	}
	if got := h.QuantileUpper(0.8); got != 8 {
		t.Errorf("QuantileUpper(0.8) = %v, want 8", got)
	}
	if got := h.QuantileLower(0.8); got != 2 {
		t.Errorf("QuantileLower(0.8) = %v, want 2", got)
	}
	if got := h.QuantileUpper(1.0); got != 10 {
		t.Errorf("QuantileUpper(1.0) = %v, want 10", got)
	}
}

func TestQuantileOverflow(t *testing.T) {
	h := MustHistogram(0, 10, 1)
	h.Add(100)
	if got := h.QuantileUpper(0.5); !math.IsInf(got, 1) {
		t.Errorf("QuantileUpper with all-overflow = %v, want +Inf", got)
	}
	if got := h.QuantileLower(0.5); got != 10 {
		t.Errorf("QuantileLower with all-overflow = %v, want 10 (lower edge of overflow)", got)
	}
}

func TestMerge(t *testing.T) {
	a := MustHistogram(0, 10, 1)
	b := MustHistogram(0, 10, 1)
	a.Add(1)
	b.Add(2)
	b.Add(math.NaN())
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 2 || a.NaNs() != 1 {
		t.Errorf("after merge Total=%d NaNs=%d, want 2,1", a.Total(), a.NaNs())
	}
	c := MustHistogram(0, 5, 1)
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched periods should error")
	}
}

func TestRenderViews(t *testing.T) {
	h := MustHistogram(0, 2, 1)
	h.Add(0.5)
	h.Add(1.5)
	for _, view := range []string{"hist", "cdf", "ccdf"} {
		out, err := h.Render(view)
		if err != nil {
			t.Fatalf("Render(%q): %v", view, err)
		}
		if !strings.Contains(out, view) {
			t.Errorf("Render(%q) missing header: %s", view, out)
		}
		if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 { // header + 4 bins
			t.Errorf("Render(%q) unexpected row count:\n%s", view, out)
		}
	}
	if _, err := h.Render("pie"); err == nil {
		t.Error("unknown view should error")
	}
}

// Property: mass is conserved — the sum of all bin counts equals Total, the
// hist fractions sum to 1, CDF is non-decreasing ending at 1, CCDF is
// non-increasing starting at 1, for any sample set.
func TestHistogramMassProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := MustHistogram(-5, 5, 0.5)
		cnt := int(n)%200 + 1
		for i := 0; i < cnt; i++ {
			h.Add(rng.NormFloat64() * 4)
		}
		var sum uint64
		for k := 0; k <= h.NumBins()+1; k++ {
			sum += h.Count(k)
		}
		if sum != h.Total() {
			return false
		}
		var fsum float64
		for _, v := range h.Fractions() {
			fsum += v
		}
		if math.Abs(fsum-1) > 1e-9 {
			return false
		}
		cdf := h.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
			return false
		}
		ccdf := h.CCDF()
		for i := 1; i < len(ccdf); i++ {
			if ccdf[i] > ccdf[i-1] {
				return false
			}
		}
		return math.Abs(ccdf[0]-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the binned QuantileUpper is always an upper bound for the exact
// sample quantile, and within one bin width of it when the sample lies in
// the interior range.
func TestQuantileBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := MustHistogram(0, 1, 0.01)
		var s Sample
		for i := 0; i < 100; i++ {
			v := rng.Float64()
			h.Add(v)
			s.Add(v)
		}
		for _, q := range []float64{0.1, 0.5, 0.8, 0.95} {
			exact := s.Quantile(q)
			binned := h.QuantileUpper(q)
			if binned < exact-1e-12 || binned > exact+0.01+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Error("empty sample should return NaN")
	}
	for _, v := range []float64{3, 1, 2, 5, 4} {
		s.Add(v)
	}
	s.Add(math.NaN())
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (NaN ignored)", s.Len())
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("Mean = %v", got)
	}
}

func TestSurface(t *testing.T) {
	s := NewSurface("threshold", "window", "power")
	s.Set(800, 20000, 1.0)
	s.Set(800, 40000, 1.1)
	s.Set(1000, 20000, 0.9)
	s.Set(1000, 40000, 1.2)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	xs, ys := s.Axes()
	if len(xs) != 2 || xs[0] != 800 || xs[1] != 1000 {
		t.Errorf("xs = %v", xs)
	}
	if len(ys) != 2 || ys[0] != 20000 || ys[1] != 40000 {
		t.Errorf("ys = %v", ys)
	}
	x, y, z := s.MinZ()
	if x != 1000 || y != 20000 || z != 0.9 {
		t.Errorf("MinZ = (%v, %v, %v)", x, y, z)
	}
	x, y, z = s.MaxZ()
	if x != 1000 || y != 40000 || z != 1.2 {
		t.Errorf("MaxZ = (%v, %v, %v)", x, y, z)
	}
	if !s.MonotoneAlongY(1, 1e-9) {
		t.Error("surface should be non-decreasing along Y")
	}
	if s.MonotoneAlongY(-1, 1e-9) {
		t.Error("surface should not be non-increasing along Y")
	}
	out := s.Render()
	if !strings.Contains(out, "threshold") || !strings.Contains(out, "0.9") {
		t.Errorf("Render output missing data:\n%s", out)
	}
}

func TestSurfaceEmpty(t *testing.T) {
	s := NewSurface("x", "y", "z")
	if _, _, z := s.MinZ(); !math.IsNaN(z) {
		t.Error("empty MinZ should be NaN")
	}
	if _, _, z := s.MaxZ(); !math.IsNaN(z) {
		t.Error("empty MaxZ should be NaN")
	}
	if !s.MonotoneAlongY(1, 0) {
		t.Error("empty surface is vacuously monotone")
	}
}

func TestSurfaceMissingPoint(t *testing.T) {
	s := NewSurface("x", "y", "z")
	s.Set(1, 1, 5)
	s.Set(2, 2, 6)
	out := s.Render()
	if !strings.Contains(out, "?") {
		t.Errorf("Render should mark missing grid points:\n%s", out)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := MustHistogram(0, 100, 0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 100))
	}
}
