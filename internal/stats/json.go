package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// histogramState is the wire form of a Histogram. The run cache and the
// exploration service serialize LOC distribution results, so the histogram
// must round-trip through JSON without losing any of its internal state.
// The observed min/max are omitted when the histogram is empty: their
// in-memory sentinels are ±Inf, which JSON cannot encode.
type histogramState struct {
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	Step   float64  `json:"step"`
	Counts []uint64 `json:"counts"`
	NaNs   uint64   `json:"nans,omitempty"`
	Sum    float64  `json:"sum"`
	SumSq  float64  `json:"sum_sq"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
}

// MarshalJSON serializes the histogram, including the under/overflow bins
// and the running moments, so UnmarshalJSON reconstructs an identical value.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	s := histogramState{
		Min: h.Min, Max: h.Max, Step: h.Step,
		Counts: h.counts,
		NaNs:   h.nan,
		Sum:    h.sum,
		SumSq:  h.sumSq,
	}
	if h.total > 0 {
		lo, hi := h.lo, h.hi
		s.Lo, s.Hi = &lo, &hi
	}
	return json.Marshal(s)
}

// UnmarshalJSON reconstructs a histogram written by MarshalJSON, validating
// the analysis period and the bin count so a corrupted document cannot
// produce an out-of-shape histogram.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var s histogramState
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	fresh, err := NewHistogram(s.Min, s.Max, s.Step)
	if err != nil {
		return err
	}
	if len(s.Counts) != len(fresh.counts) {
		return fmt.Errorf("stats: histogram <%v, %v, %v> wants %d bins, document has %d",
			s.Min, s.Max, s.Step, len(fresh.counts), len(s.Counts))
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	fresh.counts = append([]uint64(nil), s.Counts...)
	fresh.total = total
	fresh.nan = s.NaNs
	fresh.sum = s.Sum
	fresh.sumSq = s.SumSq
	if s.Lo != nil {
		fresh.lo = *s.Lo
	}
	if s.Hi != nil {
		fresh.hi = *s.Hi
	}
	if total > 0 && (math.IsInf(fresh.lo, 0) || math.IsInf(fresh.hi, 0)) {
		return fmt.Errorf("stats: histogram with %d samples lacks observed min/max", total)
	}
	*h = *fresh
	return nil
}
