package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Surface holds a scalar value per (x, y) design point — the paper's
// Figures 8 and 9 plot the 80th-percentile power/throughput over the
// (threshold, window size) grid. Points may be added in any order; rendering
// sorts the axes.
type Surface struct {
	XLabel, YLabel, ZLabel string
	points                 map[[2]float64]float64
}

// NewSurface creates an empty surface with axis labels for rendering.
func NewSurface(xLabel, yLabel, zLabel string) *Surface {
	return &Surface{
		XLabel: xLabel, YLabel: yLabel, ZLabel: zLabel,
		points: make(map[[2]float64]float64),
	}
}

// Set records z at design point (x, y), overwriting any previous value.
func (s *Surface) Set(x, y, z float64) { s.points[[2]float64{x, y}] = z }

// Get returns the value at (x, y) and whether it was set.
func (s *Surface) Get(x, y float64) (float64, bool) {
	z, ok := s.points[[2]float64{x, y}]
	return z, ok
}

// Len reports the number of set points.
func (s *Surface) Len() int { return len(s.points) }

// Axes returns the sorted distinct x and y coordinates.
func (s *Surface) Axes() (xs, ys []float64) {
	xset := map[float64]bool{}
	yset := map[float64]bool{}
	for p := range s.points {
		xset[p[0]] = true
		yset[p[1]] = true
	}
	for x := range xset {
		xs = append(xs, x)
	}
	for y := range yset {
		ys = append(ys, y)
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return xs, ys
}

// MinZ returns the minimum z over all points, with its coordinates.
// Returns NaN coordinates when the surface is empty.
func (s *Surface) MinZ() (x, y, z float64) {
	x, y, z = math.NaN(), math.NaN(), math.Inf(1)
	if len(s.points) == 0 {
		return x, y, math.NaN()
	}
	for p, v := range s.points {
		if v < z || (v == z && (p[0] < x || (p[0] == x && p[1] < y))) {
			x, y, z = p[0], p[1], v
		}
	}
	return x, y, z
}

// MaxZ returns the maximum z over all points, with its coordinates.
func (s *Surface) MaxZ() (x, y, z float64) {
	x, y, z = math.NaN(), math.NaN(), math.Inf(-1)
	if len(s.points) == 0 {
		return x, y, math.NaN()
	}
	for p, v := range s.points {
		if v > z || (v == z && (p[0] < x || (p[0] == x && p[1] < y))) {
			x, y, z = p[0], p[1], v
		}
	}
	return x, y, z
}

// Render writes the surface as a gnuplot splot data block: one line per
// point, blank line between x scanlines, missing points rendered as "?".
func (s *Surface) Render() string {
	xs, ys := s.Axes()
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\t%s\t%s\n", s.XLabel, s.YLabel, s.ZLabel)
	for _, x := range xs {
		for _, y := range ys {
			if z, ok := s.Get(x, y); ok {
				fmt.Fprintf(&b, "%g\t%g\t%.6g\n", x, y, z)
			} else {
				fmt.Fprintf(&b, "%g\t%g\t?\n", x, y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MonotoneAlongY reports whether, for every x scanline, z is non-decreasing
// (dir > 0) or non-increasing (dir < 0) in y, within tolerance tol. It is
// used by integration tests asserting e.g. "throughput grows with window
// size". Unset grid points are skipped.
func (s *Surface) MonotoneAlongY(dir int, tol float64) bool {
	xs, ys := s.Axes()
	for _, x := range xs {
		prev := math.NaN()
		for _, y := range ys {
			z, ok := s.Get(x, y)
			if !ok {
				continue
			}
			if !math.IsNaN(prev) {
				if dir > 0 && z < prev-tol {
					return false
				}
				if dir < 0 && z > prev+tol {
					return false
				}
			}
			prev = z
		}
	}
	return true
}
