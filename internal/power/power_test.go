package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVFScaling(t *testing.T) {
	if got := RefVF.EnergyScale(); got != 1 {
		t.Errorf("reference EnergyScale = %v", got)
	}
	if got := RefVF.PowerScale(); got != 1 {
		t.Errorf("reference PowerScale = %v", got)
	}
	low := VF{MHz: 400, Volts: 1.1}
	es := low.EnergyScale()
	if math.Abs(es-(1.1/1.3)*(1.1/1.3)) > 1e-12 {
		t.Errorf("EnergyScale(400/1.1) = %v", es)
	}
	ps := low.PowerScale()
	want := es * 400.0 / 600.0
	if math.Abs(ps-want) > 1e-12 {
		t.Errorf("PowerScale(400/1.1) = %v, want %v", ps, want)
	}
	// The paper's headline: bottom of the ladder is roughly half power.
	if ps < 0.45 || ps > 0.52 {
		t.Errorf("bottom-of-ladder power scale = %v, want ~0.48", ps)
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.SramWord = -1
	if err := p.Validate(); err == nil {
		t.Error("negative energy accepted")
	}
	p = DefaultParams()
	p.MEInstr = 0
	if err := p.Validate(); err == nil {
		t.Error("zero MEInstr accepted")
	}
	if _, err := NewMeter(p); err == nil {
		t.Error("NewMeter accepted invalid params")
	}
}

// TestCalibration checks the headline calibration: six MEs running flat out
// at the reference point, with a representative memory mix, land near 1.5 W.
func TestCalibration(t *testing.T) {
	m, err := NewMeter(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const us = 1000.0 // simulate 1 ms
	instrPerME := int64(600 * us)
	for me := 0; me < 6; me++ {
		m.Instr(instrPerME, RefVF)
	}
	// Memory traffic of an ipfwdr-like mix at ~1 Gbps: ~250k packets/s,
	// ~6 SRAM + 16 SDRAM + 2 scratch words per packet.
	pkts := int64(0.25 * us)
	m.Sram(6 * pkts)
	m.Sdram(16 * pkts)
	m.Scratch(2 * pkts)
	m.Base(us)
	watts := m.Total() / us
	if watts < 1.2 || watts > 1.8 {
		t.Fatalf("busy reference power = %.3f W, want ~1.5", watts)
	}
}

func TestVoltageScalingReducesEnergy(t *testing.T) {
	m, _ := NewMeter(DefaultParams())
	m.Instr(1000, RefVF)
	high := m.Total()
	m2, _ := NewMeter(DefaultParams())
	m2.Instr(1000, VF{MHz: 400, Volts: 1.1})
	low := m2.Total()
	if low >= high {
		t.Fatalf("low-voltage energy %v >= reference %v", low, high)
	}
	if math.Abs(low/high-(1.1/1.3)*(1.1/1.3)) > 1e-9 {
		t.Fatalf("scaling ratio = %v", low/high)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		m, _ := NewMeter(DefaultParams())
		m.Instr(int64(a), RefVF)
		m.IdleCycles(int64(b), RefVF)
		m.StallCycles(int64(c), VF{MHz: 450, Volts: 1.15})
		m.Sram(int64(d))
		m.Sdram(int64(a) / 2)
		m.Scratch(int64(b) / 3)
		m.Monitor()
		m.Base(float64(c) / 100)
		bd := m.Breakdown()
		sum := bd.MEDynamic + bd.MEIdle + bd.MEStall + bd.Sram + bd.Sdram + bd.Scratch + bd.Monitor + bd.Base
		return math.Abs(sum-m.Total()) < 1e-9*math.Max(1, sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdleCheaperThanBusy(t *testing.T) {
	p := DefaultParams()
	if p.MEIdleCycle >= p.MEInstr {
		t.Fatal("idle cycle should cost less than an instruction")
	}
	if p.MEStallCycle >= p.MEIdleCycle {
		t.Fatal("stalled (clock-gated) cycle should cost less than idle")
	}
}

func TestMonitorFraction(t *testing.T) {
	m, _ := NewMeter(DefaultParams())
	if m.MonitorFraction() != 0 {
		t.Error("empty meter monitor fraction should be 0")
	}
	// Realistic ratio: hundreds of instructions per packet.
	for k := 0; k < 1000; k++ {
		m.Instr(300, RefVF)
		m.Monitor()
	}
	if f := m.MonitorFraction(); f <= 0 || f >= 0.01 {
		t.Errorf("monitor fraction = %v, want (0, 1%%)", f)
	}
}

func TestVFString(t *testing.T) {
	if got := RefVF.String(); got != "600MHz/1.3V" {
		t.Errorf("String = %q", got)
	}
}
