// Package power implements the activity-based energy estimator attached to
// the NPU model, in the spirit of NePSim's power evaluation framework.
//
// Dynamic energy per operation scales with the square of supply voltage
// (E = C·V²), and power additionally with frequency (P = C·V²·α·f), which is
// exactly the knob DVS turns: stepping an ME from 600 MHz/1.3 V down to
// 400 MHz/1.1 V cuts its dynamic power to (1.1/1.3)²·(400/600) ≈ 48%.
// Memory controllers and buses sit in fixed-voltage domains (the paper
// scales only the MEs), so their per-access energies are constant.
//
// The calibration targets NePSim's reported operating range for the
// six-microengine complex: ≈1.5 W busy at the reference point, matching the
// x-axis ranges of the paper's Figures 6, 10 and 11.
package power

import "fmt"

// VF is a voltage/frequency operating point.
type VF struct {
	MHz   float64
	Volts float64
}

func (v VF) String() string { return fmt.Sprintf("%gMHz/%gV", v.MHz, v.Volts) }

// RefVF is the IXP1200-derived reference operating point used for
// calibration (the paper's upper DVS bound).
var RefVF = VF{MHz: 600, Volts: 1.3}

// EnergyScale returns the dynamic-energy scale factor of operating point v
// relative to the reference: (V/Vref)².
func (v VF) EnergyScale() float64 {
	r := v.Volts / RefVF.Volts
	return r * r
}

// PowerScale returns the dynamic-power scale factor relative to the
// reference: (V/Vref)²·(f/fref).
func (v VF) PowerScale() float64 { return v.EnergyScale() * v.MHz / RefVF.MHz }

// Params holds per-activity energies at the reference point, in microjoules.
type Params struct {
	// MEInstr is the energy of one microengine instruction issue.
	MEInstr float64
	// MEIdleCycle is the clock-tree/leakage energy an idle ME burns per
	// cycle (all contexts blocked; clocks still toggling).
	MEIdleCycle float64
	// MEStallCycle is the energy per cycle while stalled for a DVS
	// transition (PLL relock; clocks gated, lower than idle).
	MEStallCycle float64
	// MESleepCycle is the energy per cycle while an ME sits in a DPM
	// sleep state (clocks gated, state retained; below stall). Deep sleep
	// charges nothing — state is flushed and the domain power-gated.
	MESleepCycle float64
	// SramWord / SdramWord / ScratchWord are per-word access energies in
	// the fixed-voltage memory domains.
	SramWord    float64
	SdramWord   float64
	ScratchWord float64
	// MonitorUpdate is the TDVS traffic-monitor 32-bit adder energy per
	// packet arrival (the paper's <1% overhead).
	MonitorUpdate float64
	// BasePower is constant infrastructure power in watts (PLLs, pads,
	// StrongARM idle) charged continuously.
	BasePower float64
}

// DefaultParams is calibrated so that six busy MEs at the reference point
// dissipate ≈1.5 W total with a realistic memory mix (the noDVS curves of
// the paper's Figure 11 sit between 1.4 and 1.6 W).
func DefaultParams() Params {
	return Params{
		// 6 MEs × 600 Minstr/s × MEInstr µJ ≈ 1.26 W of ME dynamic power
		// when fully busy; memory and base power make up the rest.
		MEInstr:      4.3e-4,
		MEIdleCycle:  1.3e-4, // ~30% of an instruction's energy
		MEStallCycle: 0.43e-4,
		MESleepCycle: 0.13e-4, // ~10% of idle: retention only

		SramWord:      1.2e-3,
		SdramWord:     2.1e-3,
		ScratchWord:   0.4e-3,
		MonitorUpdate: 1.0e-5,
		BasePower:     0.10,
	}
}

// Validate rejects physically meaningless parameter sets.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MEInstr", p.MEInstr}, {"MEIdleCycle", p.MEIdleCycle}, {"MEStallCycle", p.MEStallCycle},
		{"MESleepCycle", p.MESleepCycle},
		{"SramWord", p.SramWord}, {"SdramWord", p.SdramWord}, {"ScratchWord", p.ScratchWord},
		{"MonitorUpdate", p.MonitorUpdate}, {"BasePower", p.BasePower},
	} {
		if f.v < 0 {
			return fmt.Errorf("power: negative %s: %v", f.name, f.v)
		}
	}
	if p.MEInstr == 0 {
		return fmt.Errorf("power: MEInstr must be positive")
	}
	return nil
}

// Meter accumulates energy. The zero value of Meter is invalid; use
// NewMeter.
type Meter struct {
	params Params
	// Per-category cumulative microjoules.
	meDynamic float64
	meIdle    float64
	meStall   float64
	meSleep   float64
	sram      float64
	sdram     float64
	scratch   float64
	monitor   float64
	base      float64
}

// NewMeter builds a meter after validating the parameters.
func NewMeter(p Params) (*Meter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Meter{params: p}, nil
}

// Params returns the meter's parameter set.
func (m *Meter) Params() Params { return m.params }

// Instr charges n instruction issues on an ME at operating point vf.
func (m *Meter) Instr(n int64, vf VF) {
	m.meDynamic += float64(n) * m.params.MEInstr * vf.EnergyScale()
}

// IdleCycles charges n idle cycles on an ME at operating point vf.
func (m *Meter) IdleCycles(n int64, vf VF) {
	m.meIdle += float64(n) * m.params.MEIdleCycle * vf.EnergyScale()
}

// StallCycles charges n DVS-transition stall cycles at operating point vf.
func (m *Meter) StallCycles(n int64, vf VF) {
	m.meStall += float64(n) * m.params.MEStallCycle * vf.EnergyScale()
}

// SleepCycles charges n DPM sleep-state cycles at operating point vf.
// Deep-sleep residency is free (power-gated) and is not charged here.
func (m *Meter) SleepCycles(n int64, vf VF) {
	m.meSleep += float64(n) * m.params.MESleepCycle * vf.EnergyScale()
}

// Sram charges an n-word SRAM access.
func (m *Meter) Sram(n int64) { m.sram += float64(n) * m.params.SramWord }

// Sdram charges an n-word SDRAM access.
func (m *Meter) Sdram(n int64) { m.sdram += float64(n) * m.params.SdramWord }

// Scratch charges an n-word scratchpad access.
func (m *Meter) Scratch(n int64) { m.scratch += float64(n) * m.params.ScratchWord }

// Monitor charges one TDVS traffic-monitor update.
func (m *Meter) Monitor() { m.monitor += m.params.MonitorUpdate }

// Base charges infrastructure power for a duration in microseconds.
func (m *Meter) Base(us float64) { m.base += m.params.BasePower * us }

// Total returns cumulative energy in microjoules.
func (m *Meter) Total() float64 {
	return m.meDynamic + m.meIdle + m.meStall + m.meSleep + m.sram + m.sdram + m.scratch + m.monitor + m.base
}

// Breakdown reports cumulative microjoules per category.
type Breakdown struct {
	MEDynamic, MEIdle, MEStall, MESleep float64
	Sram, Sdram, Scratch, Monitor, Base float64
}

// Breakdown returns the per-category energy split.
func (m *Meter) Breakdown() Breakdown {
	return Breakdown{
		MEDynamic: m.meDynamic, MEIdle: m.meIdle, MEStall: m.meStall, MESleep: m.meSleep,
		Sram: m.sram, Sdram: m.sdram, Scratch: m.scratch, Monitor: m.monitor, Base: m.base,
	}
}

// MonitorFraction returns the share of total energy charged to the TDVS
// monitor; the paper reports this must stay under 1%.
func (m *Meter) MonitorFraction() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return m.monitor / t
}
