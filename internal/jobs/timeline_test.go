package jobs

import (
	"context"
	"sync"
	"testing"
	"time"

	"nepdvs/internal/obs"
	"nepdvs/internal/span"
)

// stepClock hands out strictly increasing instants one second apart, so
// every stage of a job takes a known duration.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

// TestStageDurationsSumToWall pins the stage accounting invariant: for a
// terminal job, queue wait + execution + artifact write equal the recorded
// wall time exactly, because all four durations derive from the same
// timestamps.
func TestStageDurationsSumToWall(t *testing.T) {
	reg := obs.NewRegistry()
	q := New(Options{
		Workers: 1, Capacity: 4, Registry: reg,
		Now: (&stepClock{t: time.Unix(1000, 0)}).now,
		Exec: func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
			progress(1, 0)
			return &RunArtifact{}, nil
		},
	})
	defer q.Shutdown(context.Background())

	spec := specN(1)
	spec.TraceID = "r-stages"
	id, _, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "r-stages" {
		t.Errorf("status trace ID = %q", st.TraceID)
	}
	if st.QueueWaitNs <= 0 || st.ExecNs <= 0 || st.ArtifactWriteNs <= 0 {
		t.Fatalf("missing stage durations: %+v", st)
	}
	if got := st.QueueWaitNs + st.ExecNs + st.ArtifactWriteNs; got != st.WallNs {
		t.Fatalf("stages sum to %d ns, wall is %d ns", got, st.WallNs)
	}

	// The same stages must surface as stage-latency histogram observations.
	snap := reg.Snapshot()
	for _, name := range []string{
		"jobs_stage_queue_wait_seconds",
		"jobs_stage_exec_seconds",
		"jobs_stage_artifact_write_seconds",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty", name)
		}
	}
}

// TestTimelineMatchesStatus asserts the per-job timeline is the span form
// of the status durations: three contiguous stage spans covering exactly
// the wall time.
func TestTimelineMatchesStatus(t *testing.T) {
	q := New(Options{
		Workers: 1, Capacity: 4,
		Now: (&stepClock{t: time.Unix(2000, 0)}).now,
		Exec: func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
			return &RunArtifact{}, nil
		},
	})
	defer q.Shutdown(context.Background())

	id, _, err := q.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	events, err := q.Timeline(id)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"queue-wait", "exec", "artifact-write"}
	if len(events) != len(want) {
		t.Fatalf("timeline has %d events, want %d: %+v", len(events), len(want), events)
	}
	var cursor int64
	for i, ev := range events {
		if ev.Name != want[i] || ev.Kind != span.KindSpan {
			t.Fatalf("event %d = %+v, want span %q", i, ev, want[i])
		}
		if int64(ev.Start) != cursor {
			t.Fatalf("stage %q starts at %d, want %d (stages must tile)", ev.Name, ev.Start, cursor)
		}
		cursor = int64(ev.End)
	}
	wallPs := st.WallNs * 1000
	if cursor != wallPs {
		t.Fatalf("stages cover %d ps, wall is %d ps", cursor, wallPs)
	}

	// Unknown and unfinished jobs are errors.
	if _, err := q.Timeline("j-nope"); err == nil {
		t.Error("timeline for unknown job succeeded")
	}
}
