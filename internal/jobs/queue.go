package jobs

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"nepdvs/internal/obs"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions are possible.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

var (
	// ErrQueueFull is the backpressure signal: the pending queue is at
	// capacity and the submission was rejected. Callers retry later — the
	// HTTP layer maps this to 503 with a Retry-After.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed rejects submissions to a queue that is shutting down.
	ErrClosed = errors.New("jobs: queue closed")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotDone reports an artifact request for an unfinished job.
	ErrNotDone = errors.New("jobs: job not finished")
)

// Status is the externally visible snapshot of one job.
type Status struct {
	ID          string `json:"id"`
	Key         string `json:"key"`
	Kind        Kind   `json:"kind"`
	State       State  `json:"state"`
	Priority    int    `json:"priority"`
	PointsDone  int    `json:"points_done"`
	PointsTotal int    `json:"points_total"`
	Err         string `json:"err,omitempty"`
	// Retries counts execution attempts beyond the first spent inside the
	// job so far: per-point engine retries for a local sweep, plus remote
	// resubmissions and steals for a federated one. Before this field,
	// retry-once outcomes were visible only in sweep failure records.
	Retries int `json:"retries,omitempty"`
	// Requeues counts how many times the job was interrupted and returned
	// to the pending queue (drain timeouts). Persisted across restarts via
	// the checkpoint, so a job that keeps bouncing is visible as such.
	Requeues int `json:"requeues,omitempty"`
	// TraceID is the submitting request's trace ID, when one was attached.
	TraceID string `json:"trace_id,omitempty"`
	// Stage durations, filled as the job progresses (terminal jobs carry
	// all four). All derive from the same monotonic timestamps, so for a
	// terminal job QueueWaitNs + ExecNs + ArtifactWriteNs == WallNs exactly.
	QueueWaitNs     int64 `json:"queue_wait_ns,omitempty"`
	ExecNs          int64 `json:"exec_ns,omitempty"`
	ArtifactWriteNs int64 `json:"artifact_write_ns,omitempty"`
	WallNs          int64 `json:"wall_ns,omitempty"`
}

// job is the queue's internal record.
type job struct {
	id          string
	key         string
	spec        Spec
	seq         uint64
	state       State
	err         string
	pointsDone  int
	pointsTotal int
	retries     int
	requeues    int
	artifact    json.RawMessage
	cancel      context.CancelFunc
	userCancel  bool
	requeue     bool
	done        chan struct{}
	heapIndex   int // position in pending, -1 when not queued

	// Stage timestamps, in submission order: enqueue, worker pickup, executor
	// return, terminal transition. Every derived duration reads these same
	// values, so the stages tile the job's wall time exactly. A requeued job
	// restarts the clock at its re-enqueue.
	tSubmit  time.Time
	tStart   time.Time
	tExecEnd time.Time
	tFinish  time.Time
}

// stages renders the job's stage durations; zero timestamps (stages not
// reached yet) yield zeros. Callers hold q.mu.
func (j *job) stages() (queueWait, exec, artifact, wall time.Duration) {
	if j.tStart.IsZero() {
		return 0, 0, 0, 0
	}
	queueWait = j.tStart.Sub(j.tSubmit)
	if j.tExecEnd.IsZero() {
		return queueWait, 0, 0, 0
	}
	exec = j.tExecEnd.Sub(j.tStart)
	if j.tFinish.IsZero() {
		return queueWait, exec, 0, 0
	}
	artifact = j.tFinish.Sub(j.tExecEnd)
	wall = j.tFinish.Sub(j.tSubmit)
	return queueWait, exec, artifact, wall
}

// pendingHeap orders queued jobs by (priority desc, submission seq asc).
type pendingHeap []*job

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h pendingHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *pendingHeap) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(*h)
	*h = append(*h, j)
}
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*h = old[:n-1]
	return j
}

// Executor turns a spec into its artifact. progress, when called, reports
// the running count of completed points and of retries (execution attempts
// beyond the first) spent so far. The production executor is Execute;
// federated queues wrap it (see internal/federation); tests substitute
// deterministic stand-ins.
type Executor func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error)

// Options configures a Queue.
type Options struct {
	// Workers is the pool size; zero or below means runtime.NumCPU().
	Workers int
	// Capacity bounds the pending (not yet running) queue; submissions past
	// it fail with ErrQueueFull. Zero or below means 64.
	Capacity int
	// Registry receives the queue's counters and gauges. Nil means no
	// metrics.
	Registry *obs.Registry
	// Exec overrides the executor; nil means Execute (real simulations).
	Exec Executor
	// Logger receives structured job-lifecycle records (submit, start,
	// terminal transitions), each carrying the job and trace IDs. Nil means
	// silent.
	Logger *slog.Logger
	// Now overrides the stage clock, for deterministic tests. Nil means
	// time.Now.
	Now func() time.Time
	// RunMetrics, when non-nil, is injected into every executed spec's
	// config as both Metrics and WallMetrics, so per-run simulation counters
	// (including the per-formula loc_* assertion metrics and the
	// loc_eval_seconds latency histogram) accumulate on the daemon's
	// /metrics registry. Specs arrive with these fields nil (Validate
	// enforces it); the injection is executor-side only and never affects
	// job identity or checkpoints.
	RunMetrics *obs.Registry
}

// Queue is a bounded priority job queue with a worker pool, singleflight
// dedup on spec content, cancellation and checkpoint/resume. All methods
// are safe for concurrent use.
type Queue struct {
	workers  int
	capacity int
	exec     Executor
	log      *slog.Logger
	now      func() time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	submitted *obs.Counter
	deduped   *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	gQueued   *obs.Gauge
	gRunning  *obs.Gauge

	hQueueWait *obs.Histogram
	hExec      *obs.Histogram
	hArtifact  *obs.Histogram

	mu      sync.Mutex
	cond    *sync.Cond
	pending pendingHeap
	byID    map[string]*job
	byKey   map[string]*job // queued or running only: the dedup window
	running int
	closed  bool
	nextSeq uint64
	wg      sync.WaitGroup
}

// New builds a queue and starts its workers.
func New(opts Options) *Queue {
	q := &Queue{
		workers:  defaultWorkers(opts.Workers),
		capacity: opts.Capacity,
		exec:     opts.Exec,
		byID:     make(map[string]*job),
		byKey:    make(map[string]*job),
	}
	if q.capacity <= 0 {
		q.capacity = 64
	}
	if q.exec == nil {
		q.exec = Execute
	}
	if reg := opts.RunMetrics; reg != nil {
		inner := q.exec
		q.exec = func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
			spec.Config.Metrics = reg
			spec.Config.WallMetrics = reg
			return inner(ctx, spec, progress)
		}
	}
	q.log = opts.Logger
	if q.log == nil {
		q.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	q.now = opts.Now
	if q.now == nil {
		q.now = time.Now
	}
	if r := opts.Registry; r != nil {
		q.submitted = r.Counter("jobs_submitted")
		q.deduped = r.Counter("jobs_deduped")
		q.rejected = r.Counter("jobs_rejected")
		q.completed = r.Counter("jobs_completed")
		q.failed = r.Counter("jobs_failed")
		q.canceled = r.Counter("jobs_canceled")
		q.gQueued = r.Gauge("jobs_queued")
		q.gRunning = r.Gauge("jobs_running")
		// 1 ms .. ~8.7 min in ×2 steps: queue waits and executions span
		// microbenchmark-fast fake executors up to multi-minute sweeps.
		edges := obs.ExponentialEdges(0.001, 2, 20)
		q.hQueueWait = r.Histogram("jobs_stage_queue_wait_seconds", edges)
		q.hExec = r.Histogram("jobs_stage_exec_seconds", edges)
		q.hArtifact = r.Histogram("jobs_stage_artifact_write_seconds", edges)
	}
	q.cond = sync.NewCond(&q.mu)
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < q.workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func observe(h *obs.Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// gauges refreshes the queued/running gauges; callers hold q.mu.
func (q *Queue) gauges() {
	if q.gQueued != nil {
		q.gQueued.Set(float64(len(q.pending)))
	}
	if q.gRunning != nil {
		q.gRunning.Set(float64(q.running))
	}
}

// Submit validates and enqueues a spec. When an identical spec (same
// content key) is already queued or running, the submission dedups onto it:
// the existing job's ID is returned with deduped true and no new work is
// created. A full queue rejects with ErrQueueFull.
func (q *Queue) Submit(spec Spec) (id string, deduped bool, err error) {
	if err := spec.Validate(); err != nil {
		return "", false, err
	}
	key, err := spec.Key()
	if err != nil {
		return "", false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return "", false, ErrClosed
	}
	if j, ok := q.byKey[key]; ok {
		inc(q.deduped)
		q.log.Info("job deduped", "job", j.id, "trace_id", spec.TraceID, "onto_trace_id", j.spec.TraceID)
		return j.id, true, nil
	}
	if len(q.pending) >= q.capacity {
		inc(q.rejected)
		q.log.Warn("job rejected: queue full", "trace_id", spec.TraceID, "capacity", q.capacity)
		return "", false, ErrQueueFull
	}
	j := q.insertLocked("", key, spec)
	inc(q.submitted)
	q.log.Info("job submitted", "job", j.id, "trace_id", spec.TraceID,
		"kind", string(spec.Kind), "priority", spec.Priority, "points", j.pointsTotal)
	return j.id, false, nil
}

// insertLocked creates a job in state queued and pushes it onto the heap.
// An empty id means "mint one". Callers hold q.mu.
func (q *Queue) insertLocked(id, key string, spec Spec) *job {
	q.nextSeq++
	if id == "" {
		id = fmt.Sprintf("j-%06d", q.nextSeq)
	}
	total := 1
	if spec.Kind == KindSweep && spec.Sweep != nil {
		total = spec.Sweep.Points()
	}
	j := &job{
		id:          id,
		key:         key,
		spec:        spec,
		seq:         q.nextSeq,
		state:       StateQueued,
		pointsTotal: total,
		done:        make(chan struct{}),
		heapIndex:   -1,
		tSubmit:     q.now(),
	}
	q.byID[id] = j
	q.byKey[key] = j
	heap.Push(&q.pending, j)
	q.gauges()
	q.cond.Signal()
	return j
}

// Status returns a job's snapshot.
func (q *Queue) Status(id string) (Status, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return q.statusLocked(j), nil
}

func (q *Queue) statusLocked(j *job) Status {
	queueWait, exec, artifact, wall := j.stages()
	return Status{
		ID:              j.id,
		Key:             j.key,
		Kind:            j.spec.Kind,
		State:           j.state,
		Priority:        j.spec.Priority,
		PointsDone:      j.pointsDone,
		PointsTotal:     j.pointsTotal,
		Err:             j.err,
		Retries:         j.retries,
		Requeues:        j.requeues,
		TraceID:         j.spec.TraceID,
		QueueWaitNs:     queueWait.Nanoseconds(),
		ExecNs:          exec.Nanoseconds(),
		ArtifactWriteNs: artifact.Nanoseconds(),
		WallNs:          wall.Nanoseconds(),
	}
}

// Statuses lists every known job, submission order.
func (q *Queue) Statuses() []Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Status, 0, len(q.byID))
	for _, j := range q.byID {
		out = append(out, q.statusLocked(j))
	}
	// Map order is random; sort by ID (zero-padded, so lexicographic is
	// submission order).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Artifact returns a finished job's marshaled output. ErrNotDone while the
// job is queued or running; failed and canceled jobs have no artifact.
func (q *Queue) Artifact(id string) (json.RawMessage, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	if !ok {
		return nil, ErrNotFound
	}
	if !j.state.Terminal() {
		return nil, ErrNotDone
	}
	if j.artifact == nil {
		return nil, fmt.Errorf("jobs: job %s %s: %w", id, j.state, ErrNotDone)
	}
	return j.artifact, nil
}

// Wait blocks until the job reaches a terminal state (returning its final
// status) or ctx is done.
func (q *Queue) Wait(ctx context.Context, id string) (Status, error) {
	q.mu.Lock()
	j, ok := q.byID[id]
	q.mu.Unlock()
	if !ok {
		return Status{}, ErrNotFound
	}
	select {
	case <-j.done:
		return q.Status(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// Cancel stops a job: a queued job is removed from the heap immediately; a
// running job has its context canceled and reaches StateCanceled when its
// executor unwinds. Canceling a terminal job is a no-op.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	if !ok {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		heap.Remove(&q.pending, j.heapIndex)
		delete(q.byKey, j.key)
		j.state = StateCanceled
		j.err = "canceled before start"
		close(j.done)
		inc(q.canceled)
		q.gauges()
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return nil
}

// finishLocked moves a job that ran to its terminal bookkeeping: the final
// stage timestamp, stage-latency observations, dedup-window removal, waiter
// wakeup and the terminal log record. Callers hold q.mu and have already set
// j.state (and j.err, j.artifact).
func (q *Queue) finishLocked(j *job) {
	j.tFinish = q.now()
	_, exec, artifact, wall := j.stages()
	observe(q.hExec, exec)
	observe(q.hArtifact, artifact)
	delete(q.byKey, j.key)
	close(j.done)
	attrs := []any{"job", j.id, "trace_id", j.spec.TraceID, "state", string(j.state),
		"exec", exec, "artifact_write", artifact, "wall", wall}
	if j.err != "" {
		attrs = append(attrs, "err", j.err)
		q.log.Warn("job finished", attrs...)
		return
	}
	q.log.Info("job finished", attrs...)
}

// worker is the pool loop: pop the highest-priority job, execute, record.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for !q.closed && len(q.pending) == 0 {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.pending).(*job)
		j.state = StateRunning
		j.tStart = q.now()
		// The worker's run context carries the submitting request's trace
		// ID, so everything below — the executor, core.RunContext, a
		// context-aware run cache — can attribute itself to the request.
		ctx, cancel := context.WithCancel(obs.WithTraceID(q.baseCtx, j.spec.TraceID))
		j.cancel = cancel
		q.running++
		queueWait := j.tStart.Sub(j.tSubmit)
		observe(q.hQueueWait, queueWait)
		q.log.Info("job started", "job", j.id, "trace_id", j.spec.TraceID,
			"queue_wait", queueWait)
		q.gauges()
		q.mu.Unlock()

		artifact, err := q.exec(ctx, j.spec, func(done, retries int) {
			q.mu.Lock()
			if done > j.pointsDone {
				j.pointsDone = done
			}
			if retries > j.retries {
				j.retries = retries
			}
			q.mu.Unlock()
		})
		execEnd := q.now()
		cancel()

		q.mu.Lock()
		q.running--
		j.tExecEnd = execEnd
		switch {
		case ctx.Err() != nil && j.requeue:
			// Drain timeout interrupted it: back to the queue so the
			// checkpoint captures it. The run cache makes the replay cheap.
			// The stage clock restarts: the next pickup measures its wait
			// from the re-enqueue, not the original submission.
			j.state = StateQueued
			j.requeue = false
			j.cancel = nil
			j.pointsDone = 0
			j.retries = 0
			j.requeues++
			j.tSubmit = q.now()
			j.tStart, j.tExecEnd, j.tFinish = time.Time{}, time.Time{}, time.Time{}
			heap.Push(&q.pending, j)
			q.log.Info("job requeued", "job", j.id, "trace_id", j.spec.TraceID, "requeues", j.requeues)
		case ctx.Err() != nil && j.userCancel:
			j.state = StateCanceled
			j.err = context.Cause(ctx).Error()
			q.finishLocked(j)
			inc(q.canceled)
		case err != nil:
			j.state = StateFailed
			j.err = err.Error()
			q.finishLocked(j)
			inc(q.failed)
		default:
			if b, merr := json.Marshal(artifact); merr != nil {
				j.state = StateFailed
				j.err = fmt.Sprintf("marshal artifact: %v", merr)
				inc(q.failed)
			} else {
				j.artifact = b
				j.state = StateDone
				inc(q.completed)
			}
			q.finishLocked(j)
		}
		q.gauges()
		q.cond.Broadcast()
		q.mu.Unlock()
	}
}

// Shutdown drains the queue: no new submissions, no new job starts, and
// in-flight jobs get until ctx expires to finish. Jobs still running at the
// deadline are interrupted and returned to the pending queue (state queued)
// so a following Checkpoint persists them. Workers are stopped before
// Shutdown returns. The error is ctx's, when the drain timed out.
func (q *Queue) Shutdown(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()

	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	for q.running > 0 && ctx.Err() == nil {
		q.cond.Wait()
	}
	if q.running > 0 {
		// Deadline hit: interrupt stragglers, flag them for requeue.
		for _, j := range q.byID {
			if j.state == StateRunning && j.cancel != nil {
				j.requeue = true
				j.cancel()
			}
		}
		for q.running > 0 {
			q.cond.Wait()
		}
	}
	q.mu.Unlock()
	q.wg.Wait()
	q.baseCancel()
	return ctx.Err()
}

// Pending returns the number of queued (not running) jobs.
func (q *Queue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Running returns the number of jobs currently executing.
func (q *Queue) Running() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running
}
