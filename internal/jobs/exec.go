package jobs

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"nepdvs/internal/core"
)

func defaultWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Execute is the real executor: it runs a spec through internal/core and
// returns the artifact to store. progress, when non-nil, receives the
// running count of completed points (1 for a plain run) and of retries
// spent. Both the job queue and anything driving specs directly (tests,
// batch tools) use this one function, so service results and local results
// are the same bytes.
func Execute(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
	switch spec.Kind {
	case KindRun:
		res, err := core.RunContext(ctx, spec.Config)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(1, 0)
		}
		return &RunArtifact{Result: res}, nil
	case KindSweep:
		var mu sync.Mutex
		done, retries := 0, 0
		onPoint := func(r core.SweepResult) {
			mu.Lock()
			done++
			retries += r.Retries
			d, rt := done, retries
			mu.Unlock()
			if progress != nil {
				progress(d, rt)
			}
		}
		results, err := core.SweepTDVSContext(ctx, spec.Config,
			spec.Sweep.Thresholds, spec.Sweep.Windows, spec.Sweep.Parallelism, onPoint)
		if results == nil {
			return nil, err
		}
		// Partial failure still yields an artifact; the failed points carry
		// their errors inside it, which is the sweep's own resilience
		// contract (see core.SweepTDVS).
		return NewSweepArtifact(results), nil
	}
	return nil, fmt.Errorf("jobs: unknown kind %q", spec.Kind)
}
