package jobs

// Checkpoint robustness: a truncated, garbled or otherwise corrupt
// checkpoint must fail Restore with the typed corrupt error, restore zero
// jobs, and leave the queue fully usable — never panic or half-load.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRestoreCorruptCheckpoint(t *testing.T) {
	valid := checkpointFile{Schema: checkpointSchema, Jobs: []PersistedJob{
		{ID: "j-000001", Spec: specN(1)},
		{ID: "j-000002", Spec: specN(2)},
	}}
	validBytes, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		bytes []byte
	}{
		{"truncated", validBytes[:len(validBytes)/2]},
		{"garbage", []byte("not json at all {{{")},
		{"empty object trailing junk", []byte("{}]")},
		{"wrong schema", mustJSON(t, checkpointFile{Schema: checkpointSchema + 1, Jobs: valid.Jobs})},
		{"invalid spec", mustJSON(t, checkpointFile{Schema: checkpointSchema, Jobs: []PersistedJob{
			{ID: "j-000001", Spec: specN(1)},
			{ID: "j-000002", Spec: Spec{Kind: "bogus"}},
		}})},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.name, " ", "_"), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "queue.json")
			if err := os.WriteFile(path, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			q := New(Options{Workers: 1, Capacity: 8, Exec: func(ctx context.Context, spec Spec, _ func(done, retries int)) (any, error) {
				return &RunArtifact{}, nil
			}})
			defer q.Shutdown(context.Background())

			n, err := q.Restore(path)
			if err == nil {
				t.Fatalf("Restore(%s) succeeded, want corrupt error", tc.name)
			}
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("Restore error %v does not match ErrCheckpointCorrupt", err)
			}
			var ce *CorruptCheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("Restore error %T is not a *CorruptCheckpointError", err)
			}
			if ce.Path != path {
				t.Errorf("CorruptCheckpointError.Path = %q, want %q", ce.Path, path)
			}
			if n != 0 {
				t.Fatalf("corrupt restore loaded %d jobs, want 0 (no half-loads)", n)
			}
			if got := q.Pending(); got != 0 {
				t.Fatalf("queue has %d pending after failed restore, want 0", got)
			}

			// The queue must remain fully usable.
			id, _, err := q.Submit(specN(3))
			if err != nil {
				t.Fatalf("Submit after failed restore: %v", err)
			}
			st, err := q.Wait(context.Background(), id)
			if err != nil || st.State != StateDone {
				t.Fatalf("job after failed restore: state=%v err=%v", st.State, err)
			}
		})
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRestoreMissingFileIsNotCorrupt pins the distinction: absent file =
// fresh daemon, zero jobs, nil error.
func TestRestoreMissingFileIsNotCorrupt(t *testing.T) {
	q := New(Options{Workers: 1, Capacity: 4})
	defer q.Shutdown(context.Background())
	n, err := q.Restore(filepath.Join(t.TempDir(), "nope.json"))
	if n != 0 || err != nil {
		t.Fatalf("Restore(missing) = (%d, %v), want (0, nil)", n, err)
	}
}

// TestRetryAndRequeueCounts drives both counters: an executor that reports
// retries through progress, and a drain timeout that requeues the in-flight
// job. Both must surface in Status and the requeue count must survive a
// checkpoint/restore cycle.
func TestRetryAndRequeueCounts(t *testing.T) {
	exec, release, _ := blockingExec()
	q := New(Options{Workers: 1, Capacity: 8, Exec: exec})
	id, _, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, id, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	close(release)
	st, err := q.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requeues != 1 {
		t.Fatalf("requeues after drain = %d, want 1", st.Requeues)
	}

	path := filepath.Join(t.TempDir(), "queue.json")
	if err := q.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	// The restored job carries its requeue history and accumulates retries
	// reported by the executor.
	q2 := New(Options{Workers: 1, Capacity: 8, Exec: func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
		progress(1, 3)
		return &RunArtifact{}, nil
	}})
	defer q2.Shutdown(context.Background())
	if n, err := q2.Restore(path); err != nil || n != 1 {
		t.Fatalf("Restore = (%d, %v), want (1, nil)", n, err)
	}
	st2, err := q2.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone {
		t.Fatalf("restored job finished %s: %s", st2.State, st2.Err)
	}
	if st2.Requeues != 1 {
		t.Errorf("restored job requeues = %d, want 1 (persisted)", st2.Requeues)
	}
	if st2.Retries != 3 {
		t.Errorf("job retries = %d, want 3 (from executor progress)", st2.Retries)
	}

	// And the status JSON carries both fields for GET /v1/jobs/{id}.
	b, err := json.Marshal(st2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"retries":3`, `"requeues":1`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("status JSON %s missing %s", b, want)
		}
	}
}
