package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"nepdvs/internal/obs"
)

// checkpointSchema versions the queue checkpoint file.
const checkpointSchema = 1

// ErrCheckpointCorrupt is the errors.Is target for every defect Restore can
// find in an existing checkpoint file: truncation, bad JSON, a wrong
// schema, or a spec that no longer validates. A missing file is NOT corrupt
// (a fresh daemon has no checkpoint); only a file that exists but cannot be
// trusted is.
var ErrCheckpointCorrupt = errors.New("jobs: checkpoint corrupt")

// CorruptCheckpointError carries the path and underlying defect of an
// unusable checkpoint. It matches ErrCheckpointCorrupt under errors.Is, so
// callers can branch on "corrupt file" without string matching.
type CorruptCheckpointError struct {
	Path string
	Err  error
}

func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("jobs: restore %s: checkpoint corrupt: %v", e.Path, e.Err)
}

func (e *CorruptCheckpointError) Unwrap() error { return e.Err }

// Is matches ErrCheckpointCorrupt, whatever the underlying defect.
func (e *CorruptCheckpointError) Is(target error) bool { return target == ErrCheckpointCorrupt }

// PersistedJob is one pending job as written to a checkpoint: its ID (so a
// client polling across a daemon restart keeps a valid handle), the full
// spec, and the job's requeue count so far (a job that keeps bouncing
// through drains stays visible as such across restarts).
type PersistedJob struct {
	ID       string `json:"id"`
	Spec     Spec   `json:"spec"`
	Requeues int    `json:"requeues,omitempty"`
}

type checkpointFile struct {
	Schema int            `json:"schema"`
	Jobs   []PersistedJob `json:"jobs"`
}

// Checkpoint writes the pending (queued, not running) jobs to path
// atomically, highest priority first. Call after Shutdown: the drain
// returns interrupted jobs to the pending queue, so nothing in flight is
// lost. An empty queue writes an empty checkpoint, clobbering any stale one.
func (q *Queue) Checkpoint(path string) error {
	q.mu.Lock()
	jobs := make([]*job, 0, len(q.pending))
	jobs = append(jobs, q.pending...)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].spec.Priority != jobs[k].spec.Priority {
			return jobs[i].spec.Priority > jobs[k].spec.Priority
		}
		return jobs[i].seq < jobs[k].seq
	})
	cf := checkpointFile{Schema: checkpointSchema, Jobs: make([]PersistedJob, len(jobs))}
	for i, j := range jobs {
		cf.Jobs[i] = PersistedJob{ID: j.id, Spec: j.spec, Requeues: j.requeues}
	}
	q.mu.Unlock()

	b, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	return obs.AtomicWriteFile(path, b, 0o644)
}

// Restore loads a checkpoint into the queue, preserving job IDs so clients
// holding handles from before a restart still resolve. The load is all or
// nothing: every job is parsed, validated and keyed before the first one is
// inserted, so a truncated or corrupted file fails cleanly with a
// CorruptCheckpointError (errors.Is ErrCheckpointCorrupt) and leaves the
// queue exactly as it was — never half-loaded. Jobs whose key duplicates
// one already queued are skipped. Returns the number of jobs restored. A
// missing file restores nothing and is not an error — a fresh daemon has no
// checkpoint.
func (q *Queue) Restore(path string) (int, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("jobs: restore: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return 0, &CorruptCheckpointError{Path: path, Err: err}
	}
	if cf.Schema != checkpointSchema {
		return 0, &CorruptCheckpointError{Path: path, Err: fmt.Errorf("schema %d, want %d", cf.Schema, checkpointSchema)}
	}
	// Phase one: validate everything up front, touching no queue state.
	keys := make([]string, len(cf.Jobs))
	for i, pj := range cf.Jobs {
		if err := pj.Spec.Validate(); err != nil {
			return 0, &CorruptCheckpointError{Path: path, Err: fmt.Errorf("job %s: %w", pj.ID, err)}
		}
		key, err := pj.Spec.Key()
		if err != nil {
			return 0, &CorruptCheckpointError{Path: path, Err: fmt.Errorf("job %s: %w", pj.ID, err)}
		}
		keys[i] = key
	}
	// Phase two: insert under one lock. Nothing below can fail.
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	restored := 0
	for i, pj := range cf.Jobs {
		if _, dup := q.byKey[keys[i]]; dup {
			continue
		}
		var j *job
		if _, taken := q.byID[pj.ID]; taken {
			// An ID collision with a live job: mint a fresh ID rather than
			// corrupt the index.
			j = q.insertLocked("", keys[i], pj.Spec)
		} else {
			j = q.insertLocked(pj.ID, keys[i], pj.Spec)
		}
		j.requeues = pj.Requeues
		restored++
	}
	return restored, nil
}
