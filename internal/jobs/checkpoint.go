package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nepdvs/internal/obs"
)

// checkpointSchema versions the queue checkpoint file.
const checkpointSchema = 1

// PersistedJob is one pending job as written to a checkpoint: its ID (so a
// client polling across a daemon restart keeps a valid handle) and the full
// spec.
type PersistedJob struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
}

type checkpointFile struct {
	Schema int            `json:"schema"`
	Jobs   []PersistedJob `json:"jobs"`
}

// Checkpoint writes the pending (queued, not running) jobs to path
// atomically, highest priority first. Call after Shutdown: the drain
// returns interrupted jobs to the pending queue, so nothing in flight is
// lost. An empty queue writes an empty checkpoint, clobbering any stale one.
func (q *Queue) Checkpoint(path string) error {
	q.mu.Lock()
	jobs := make([]*job, 0, len(q.pending))
	jobs = append(jobs, q.pending...)
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].spec.Priority != jobs[k].spec.Priority {
			return jobs[i].spec.Priority > jobs[k].spec.Priority
		}
		return jobs[i].seq < jobs[k].seq
	})
	cf := checkpointFile{Schema: checkpointSchema, Jobs: make([]PersistedJob, len(jobs))}
	for i, j := range jobs {
		cf.Jobs[i] = PersistedJob{ID: j.id, Spec: j.spec}
	}
	q.mu.Unlock()

	b, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: checkpoint: %w", err)
	}
	return obs.AtomicWriteFile(path, b, 0o644)
}

// Restore loads a checkpoint into the queue, preserving job IDs so clients
// holding handles from before a restart still resolve. Jobs whose key
// duplicates one already queued are skipped. Returns the number of jobs
// restored. A missing file restores nothing and is not an error — a fresh
// daemon has no checkpoint.
func (q *Queue) Restore(path string) (int, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("jobs: restore: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return 0, fmt.Errorf("jobs: restore %s: %w", path, err)
	}
	if cf.Schema != checkpointSchema {
		return 0, fmt.Errorf("jobs: restore %s: schema %d, want %d", path, cf.Schema, checkpointSchema)
	}
	restored := 0
	for _, pj := range cf.Jobs {
		if err := pj.Spec.Validate(); err != nil {
			return restored, fmt.Errorf("jobs: restore %s: job %s: %w", path, pj.ID, err)
		}
		key, err := pj.Spec.Key()
		if err != nil {
			return restored, fmt.Errorf("jobs: restore %s: job %s: %w", path, pj.ID, err)
		}
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return restored, ErrClosed
		}
		if _, dup := q.byKey[key]; dup {
			q.mu.Unlock()
			continue
		}
		if _, taken := q.byID[pj.ID]; taken {
			// An ID collision with a live job: mint a fresh ID rather than
			// corrupt the index.
			q.insertLocked("", key, pj.Spec)
		} else {
			q.insertLocked(pj.ID, key, pj.Spec)
		}
		q.mu.Unlock()
		restored++
	}
	return restored, nil
}
