// Package jobs is the execution layer of the exploration service: a bounded
// priority queue feeding a worker pool that runs simulations through
// internal/core. It owns everything between "a request arrived" and "the
// artifact exists" — admission control (backpressure when full), dedup of
// identical in-flight work (singleflight on the spec's content key),
// cancellation, per-job progress, and checkpoint/resume so a restarted
// daemon picks pending work back up.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"nepdvs/internal/core"
	"nepdvs/internal/loc"
)

// Kind discriminates what a job executes.
type Kind string

const (
	// KindRun simulates one configuration.
	KindRun Kind = "run"
	// KindSweep sweeps a TDVS (threshold, window) grid.
	KindSweep Kind = "sweep"
)

// SweepSpec is the grid half of a sweep job.
type SweepSpec struct {
	Thresholds []float64 `json:"thresholds"`
	Windows    []int64   `json:"windows"`
	// Parallelism bounds concurrent points inside this one job; zero or
	// below means runtime.NumCPU() (the core.SweepTDVS convention).
	Parallelism int `json:"parallelism,omitempty"`
}

// Spec describes one unit of work. It is the wire format clients POST and
// the checkpoint format pending jobs persist as.
type Spec struct {
	Kind   Kind           `json:"kind"`
	Config core.RunConfig `json:"config"`
	Sweep  *SweepSpec     `json:"sweep,omitempty"`
	// Priority orders the queue: higher runs first; equal priorities run in
	// submission order. It does not participate in the dedup key — an
	// urgent request for work already queued attaches to the existing job.
	Priority int `json:"priority,omitempty"`
	// TraceID names the client interaction that submitted this work, for
	// log and timeline attribution (the server fills it from X-Request-ID).
	// Like Priority it is not content: it never participates in the dedup
	// key, so a resubmission under a new trace ID attaches to the existing
	// job (which keeps its original ID).
	TraceID string `json:"trace_id,omitempty"`
}

// Validate rejects specs the queue would only fail on later.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindRun:
		if s.Sweep != nil {
			return fmt.Errorf("jobs: run spec carries a sweep grid")
		}
	case KindSweep:
		if s.Sweep == nil {
			return fmt.Errorf("jobs: sweep spec missing grid")
		}
		if len(s.Sweep.Thresholds) == 0 || len(s.Sweep.Windows) == 0 {
			return fmt.Errorf("jobs: sweep grid is empty")
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q", s.Kind)
	}
	if s.Config.ExtraSink != nil || s.Config.Metrics != nil || s.Config.Spans != nil || s.Config.WallMetrics != nil {
		return fmt.Errorf("jobs: spec config must be serializable (no sinks, registries or recorders)")
	}
	// Assertion sets are statically analyzed at admission against the exact
	// trace schema of the spec's chip: a vacuous or tautological formula
	// would burn a full simulation to produce an empty claim, so it is
	// rejected here, where the submitter still has the context to fix it.
	if s.Config.Formulas != "" {
		diags, parsed := loc.AnalyzeFile(s.Config.Formulas, core.EventSchemaFor(s.Config.Chip))
		if !parsed {
			return fmt.Errorf("jobs: formulas do not parse: %s", diags[0])
		}
		if len(diags) > 0 {
			msgs := make([]string, len(diags))
			for i, d := range diags {
				msgs[i] = d.String()
			}
			return fmt.Errorf("jobs: formulas fail static analysis:\n%s", strings.Join(msgs, "\n"))
		}
	}
	return nil
}

// Points expands a sweep grid in the canonical threshold-major order.
func (s SweepSpec) Points() int { return len(s.Thresholds) * len(s.Windows) }

// keySpec is Spec minus the fields that must not affect identity. Priority
// is scheduling, not content; two requests for the same work at different
// priorities dedup onto one job.
type keySpec struct {
	Kind   Kind           `json:"kind"`
	Config core.RunConfig `json:"config"`
	Sweep  *SweepSpec     `json:"sweep,omitempty"`
}

// Key is the spec's content address: hex SHA-256 of its canonical JSON.
// Identical submissions share a key, which is what the queue's singleflight
// dedup collapses on.
func (s Spec) Key() (string, error) {
	b, err := json.Marshal(keySpec{Kind: s.Kind, Config: s.Config, Sweep: s.Sweep})
	if err != nil {
		return "", fmt.Errorf("jobs: spec key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
