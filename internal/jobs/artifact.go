package jobs

import (
	"encoding/json"
	"fmt"

	"nepdvs/internal/core"
	"nepdvs/internal/loc"
)

// RunArtifact is the stored output of a KindRun job.
type RunArtifact struct {
	Result *core.RunResult `json:"result"`
}

// SweepPoint is one grid point's outcome in a serializable form (errors
// flatten to strings; core.SweepResult's error field cannot round-trip).
type SweepPoint struct {
	Point  core.Point      `json:"point"`
	Result *core.RunResult `json:"result,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// SweepArtifact is the stored output of a KindSweep job, points in the
// canonical threshold-major order.
type SweepArtifact struct {
	Points []SweepPoint `json:"points"`
}

// NewSweepArtifact converts sweep results to their artifact form. Both the
// service and direct-API users go through this one function, which is what
// makes "dvsctl fetch" byte-identical to marshaling a local core.SweepTDVS.
func NewSweepArtifact(results []core.SweepResult) *SweepArtifact {
	a := &SweepArtifact{Points: make([]SweepPoint, len(results))}
	for i, r := range results {
		p := SweepPoint{Point: r.Point, Result: r.Result}
		if r.Err != nil {
			p.Err = r.Err.Error()
		}
		a.Points[i] = p
	}
	return a
}

// AssertionReport derives the unified assertion report from stored artifact
// bytes. Run artifacts report their formulas directly; sweep artifacts
// concatenate per-point formula results with "th<threshold>-w<window>/" name
// prefixes in the canonical point order. Built from the serialized result
// alone, so the service path (GET /v1/jobs/{id}/assertions) produces bytes
// identical to loc.BuildReport over the equivalent local run.
func AssertionReport(raw json.RawMessage) (*loc.Report, error) {
	var probe struct {
		Result *core.RunResult `json:"result"`
		Points []SweepPoint    `json:"points"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("jobs: decoding artifact: %w", err)
	}
	switch {
	case probe.Result != nil:
		return loc.BuildReport(probe.Result.LOC), nil
	case probe.Points != nil:
		var all []loc.Result
		for _, p := range probe.Points {
			if p.Result == nil {
				continue
			}
			for _, lr := range p.Result.LOC {
				lr.Name = fmt.Sprintf("th%g-w%d/%s", p.Point.ThresholdMbps, p.Point.WindowCycles, lr.Name)
				all = append(all, lr)
			}
		}
		return loc.BuildReport(all), nil
	}
	return nil, fmt.Errorf("jobs: artifact carries no run results")
}
