package jobs

import "nepdvs/internal/core"

// RunArtifact is the stored output of a KindRun job.
type RunArtifact struct {
	Result *core.RunResult `json:"result"`
}

// SweepPoint is one grid point's outcome in a serializable form (errors
// flatten to strings; core.SweepResult's error field cannot round-trip).
type SweepPoint struct {
	Point  core.Point      `json:"point"`
	Result *core.RunResult `json:"result,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// SweepArtifact is the stored output of a KindSweep job, points in the
// canonical threshold-major order.
type SweepArtifact struct {
	Points []SweepPoint `json:"points"`
}

// NewSweepArtifact converts sweep results to their artifact form. Both the
// service and direct-API users go through this one function, which is what
// makes "dvsctl fetch" byte-identical to marshaling a local core.SweepTDVS.
func NewSweepArtifact(results []core.SweepResult) *SweepArtifact {
	a := &SweepArtifact{Points: make([]SweepPoint, len(results))}
	for i, r := range results {
		p := SweepPoint{Point: r.Point, Result: r.Result}
		if r.Err != nil {
			p.Err = r.Err.Error()
		}
		a.Points[i] = p
	}
	return a
}
