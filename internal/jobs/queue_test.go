package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nepdvs/internal/core"
	"nepdvs/internal/obs"
)

// specN builds distinct valid run specs (distinct cycle counts → distinct
// content keys).
func specN(n int) Spec {
	return Spec{Kind: KindRun, Config: core.RunConfig{Cycles: int64(100_000 + n)}}
}

// blockingExec returns an executor that parks every job until release is
// closed (or its context is canceled), recording execution order.
func blockingExec() (exec Executor, release chan struct{}, order *[]int64) {
	release = make(chan struct{})
	var mu sync.Mutex
	var seen []int64
	order = &seen
	exec = func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
		mu.Lock()
		seen = append(seen, spec.Config.Cycles)
		mu.Unlock()
		select {
		case <-release:
			if progress != nil {
				progress(1, 0)
			}
			return &RunArtifact{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return exec, release, order
}

func TestQueueBackpressure(t *testing.T) {
	exec, release, _ := blockingExec()
	q := New(Options{Workers: 1, Capacity: 1, Exec: exec})
	defer func() {
		close(release)
		q.Shutdown(context.Background())
	}()

	// First job occupies the worker; second fills the queue; third bounces.
	id1, _, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, id1, StateRunning)
	if _, _, err := q.Submit(specN(2)); err != nil {
		t.Fatal(err)
	}
	_, _, err = q.Submit(specN(3))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
}

func waitState(t *testing.T, q *Queue, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := q.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := q.Status(id)
	t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
}

// 32 concurrent submissions of the same spec must collapse onto one job and
// one execution — the service-level dedup acceptance criterion.
func TestQueueDedup(t *testing.T) {
	var execs int
	var mu sync.Mutex
	block := make(chan struct{})
	q := New(Options{Workers: 2, Capacity: 8, Exec: func(ctx context.Context, spec Spec, _ func(done, retries int)) (any, error) {
		mu.Lock()
		execs++
		mu.Unlock()
		<-block
		return &RunArtifact{}, nil
	}})
	defer q.Shutdown(context.Background())

	const n = 32
	ids := make([]string, n)
	dedups := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, dd, err := q.Submit(specN(0))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i], dedups[i] = id, dd
		}()
	}
	wg.Wait()
	close(block)

	first := ids[0]
	var fresh int
	for i := 0; i < n; i++ {
		if ids[i] != first {
			t.Fatalf("submission %d got job %s, want %s", i, ids[i], first)
		}
		if !dedups[i] {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d submissions created jobs, want exactly 1", fresh)
	}
	if _, err := q.Wait(context.Background(), first); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if execs != 1 {
		t.Errorf("executor ran %d times, want 1", execs)
	}
}

func TestQueueCancel(t *testing.T) {
	exec, release, _ := blockingExec()
	q := New(Options{Workers: 1, Capacity: 8, Exec: exec})
	defer func() {
		close(release)
		q.Shutdown(context.Background())
	}()

	running, _, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, running, StateRunning)
	queued, _, err := q.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}

	// Canceling a queued job is immediate.
	if err := q.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, err := q.Status(queued)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	if _, err := q.Artifact(queued); err == nil {
		t.Error("canceled job served an artifact")
	}

	// Canceling a running job interrupts its context.
	if err := q.Cancel(running); err != nil {
		t.Fatal(err)
	}
	fin, err := q.Wait(context.Background(), running)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateCanceled {
		t.Fatalf("running job after cancel: %s", fin.State)
	}

	// A canceled key leaves the dedup window: resubmitting creates new work.
	id2, dd, err := q.Submit(specN(2))
	if err != nil {
		t.Fatal(err)
	}
	if dd || id2 == queued {
		t.Errorf("resubmit after cancel deduped onto the dead job (id %s, deduped %v)", id2, dd)
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	exec, release, order := blockingExec()
	q := New(Options{Workers: 1, Capacity: 8, Exec: exec})

	// Occupy the worker so subsequent submissions queue up.
	gate, _, err := q.Submit(specN(0))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, gate, StateRunning)

	low := specN(1)
	high := specN(2)
	high.Priority = 10
	mid := specN(3)
	mid.Priority = 5
	var ids []string
	for _, s := range []Spec{low, high, mid} {
		id, _, err := q.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	close(release)
	for _, id := range ids {
		if _, err := q.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	q.Shutdown(context.Background())

	got := *order
	want := []int64{100_000, 100_002, 100_003, 100_001} // gate, high, mid, low
	if len(got) != len(want) {
		t.Fatalf("executed %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestQueueProgressAndArtifact(t *testing.T) {
	q := New(Options{Workers: 1, Capacity: 8, Exec: func(ctx context.Context, spec Spec, progress func(done, retries int)) (any, error) {
		for i := 1; i <= spec.Sweep.Points(); i++ {
			progress(i, 0)
		}
		return &SweepArtifact{Points: []SweepPoint{{Point: core.Point{ThresholdMbps: 1}}}}, nil
	}})
	defer q.Shutdown(context.Background())

	spec := Spec{
		Kind:   KindSweep,
		Config: core.RunConfig{Cycles: 1},
		Sweep:  &SweepSpec{Thresholds: []float64{1, 2}, Windows: []int64{10, 20, 30}},
	}
	id, _, err := q.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := q.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.PointsDone != 6 || st.PointsTotal != 6 {
		t.Fatalf("final status %+v, want done 6/6", st)
	}
	raw, err := q.Artifact(id)
	if err != nil {
		t.Fatal(err)
	}
	var art SweepArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if len(art.Points) != 1 || art.Points[0].Point.ThresholdMbps != 1 {
		t.Fatalf("artifact %+v", art)
	}
}

// Shutdown must return interrupted in-flight jobs to the pending queue, and
// Checkpoint/Restore must round-trip them with IDs intact.
func TestQueueCheckpointResume(t *testing.T) {
	exec, release, _ := blockingExec()
	q := New(Options{Workers: 1, Capacity: 8, Exec: exec})

	inflight, _, err := q.Submit(specN(1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, inflight, StateRunning)
	var pendingIDs []string
	for i := 2; i <= 4; i++ {
		id, _, err := q.Submit(specN(i))
		if err != nil {
			t.Fatal(err)
		}
		pendingIDs = append(pendingIDs, id)
	}

	// Drain with an immediate deadline: the in-flight job is interrupted
	// and requeued rather than lost.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	close(release)
	if n := q.Pending(); n != 4 {
		t.Fatalf("pending after drain = %d, want 4 (3 queued + 1 requeued)", n)
	}

	path := filepath.Join(t.TempDir(), "queue.json")
	if err := q.Checkpoint(path); err != nil {
		t.Fatal(err)
	}

	// A fresh queue resumes the work under the same IDs.
	done := make(chan string, 8)
	q2 := New(Options{Workers: 2, Capacity: 8, Exec: func(ctx context.Context, spec Spec, _ func(done, retries int)) (any, error) {
		done <- fmt.Sprint(spec.Config.Cycles)
		return &RunArtifact{}, nil
	}})
	n, err := q2.Restore(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("restored %d jobs, want 4", n)
	}
	for _, id := range append([]string{inflight}, pendingIDs...) {
		st, err := q2.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("job %s not restored: %v", id, err)
		}
		if st.State != StateDone {
			t.Errorf("restored job %s finished %s", id, st.State)
		}
	}
	q2.Shutdown(context.Background())

	// A second restore into the same queue dedups everything.
	q3 := New(Options{Workers: 1, Capacity: 8, Exec: exec})
	if _, err := q3.Restore(path); err != nil {
		t.Fatal(err)
	}
	n, err = q3.Restore(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("double restore added %d jobs", n)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	q3.Shutdown(ctx2)
}

func TestQueueMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	exec, release, _ := blockingExec()
	q := New(Options{Workers: 1, Capacity: 1, Registry: reg, Exec: exec})

	id1, _, _ := q.Submit(specN(1))
	waitState(t, q, id1, StateRunning)
	q.Submit(specN(2)) // queued
	q.Submit(specN(2)) // deduped
	q.Submit(specN(3)) // rejected: full
	close(release)
	q.Wait(context.Background(), id1)
	q.Shutdown(context.Background())

	c := reg.Snapshot().Counters
	for name, want := range map[string]uint64{
		"jobs_submitted": 2,
		"jobs_deduped":   1,
		"jobs_rejected":  1,
	} {
		if c[name] != want {
			t.Errorf("%s = %d, want %d", name, c[name], want)
		}
	}
	if c["jobs_completed"] < 1 {
		t.Errorf("jobs_completed = %d, want >= 1", c["jobs_completed"])
	}
}

func TestSpecValidateAndKey(t *testing.T) {
	good := specN(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	k1, err := good.Key()
	if err != nil {
		t.Fatal(err)
	}
	// Priority is scheduling, not identity.
	urgent := good
	urgent.Priority = 99
	k2, err := urgent.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("priority changed the spec key")
	}
	if k3, _ := specN(2).Key(); k3 == k1 {
		t.Error("distinct configs share a key")
	}

	bad := []Spec{
		{Kind: "nope", Config: core.RunConfig{}},
		{Kind: KindRun, Sweep: &SweepSpec{Thresholds: []float64{1}, Windows: []int64{1}}},
		{Kind: KindSweep},
		{Kind: KindSweep, Sweep: &SweepSpec{}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}
