package jobs

import (
	"nepdvs/internal/sim"
	"nepdvs/internal/span"
)

// Timeline renders a terminal job's service-side stages as span events:
// queue wait, execution and artifact write, back to back on one track with
// the job's submission as time zero. The spans derive from the same
// timestamps as the Status durations, so they tile the job's wall time
// exactly — the same contract the sim-side recorder keeps, which lets both
// worlds share the Perfetto exporter.
func (q *Queue) Timeline(id string) ([]span.Event, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.byID[id]
	if !ok {
		return nil, ErrNotFound
	}
	if !j.state.Terminal() {
		return nil, ErrNotDone
	}
	queueWait, exec, artifact, _ := j.stages()
	track := "job " + j.id
	toPs := func(ns int64) sim.Time { return sim.Time(ns) * sim.Nanosecond }
	t1 := toPs(queueWait.Nanoseconds())
	t2 := t1 + toPs(exec.Nanoseconds())
	t3 := t2 + toPs(artifact.Nanoseconds())

	rec := span.NewRecorder()
	rec.Span(track, "queue-wait", "job", 0, t1, map[string]float64{"priority": float64(j.spec.Priority)})
	rec.Span(track, "exec", "job", t1, t2, map[string]float64{"points": float64(j.pointsDone)})
	rec.Span(track, "artifact-write", "job", t2, t3, nil)
	return rec.Events(), nil
}
