// Package cache is the on-disk half of the content-addressed run cache: a
// directory of atomic JSON entries keyed by core.RunKey. Each entry carries
// the canonical key material it was derived from plus a SHA-256 over its
// payload, so corruption — a torn write, a flipped bit, a hand-edited file —
// is detected on read and degrades to a miss instead of serving a wrong
// result. The store implements core.RunCache; install it with
// core.SetRunCache and every run in the process becomes cacheable.
//
// Failure semantics, in one line: the cache never fails a simulation. Read
// errors are misses, write errors are counted and swallowed, corrupt entries
// are deleted on detection.
package cache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nepdvs/internal/core"
	"nepdvs/internal/obs"
)

// fileSchema versions the on-disk entry envelope (not the key derivation,
// which core.RunKey versions separately). Entries with a different schema
// are treated as misses.
const fileSchema = 1

// fileEntry is the on-disk envelope for one cached run.
type fileEntry struct {
	Schema int `json:"schema"`
	// Key is the content address (hex SHA-256 of Material); stored so an
	// entry renamed on disk still declares what it caches.
	Key string `json:"key"`
	// Material is the canonical key material (core.RunKeyMaterial) — the
	// audit trail from key back to config.
	Material json.RawMessage `json:"material"`
	// SHA256 is the hex digest of Payload, checked on every read.
	SHA256 string `json:"sha256"`
	// Payload is the marshaled core.CachedRun.
	Payload json.RawMessage `json:"payload"`
}

// Options tunes a Store.
type Options struct {
	// Registry receives the cache counters (cache_hits, cache_misses,
	// cache_stores, cache_errors, cache_evictions). Nil means no metrics.
	Registry *obs.Registry
	// MaxEntries bounds the store; when a Store would exceed it, the oldest
	// entries (by insertion order) are evicted first. Zero or below means
	// unbounded.
	MaxEntries int
	// Logger receives per-operation debug records (hit, miss, store), each
	// carrying the trace ID of the request that triggered it when the core
	// consulted the cache through its context-aware path. Nil means silent.
	Logger *slog.Logger
}

// Store is a directory-backed core.RunCache. Safe for concurrent use by
// multiple goroutines in one process; concurrent processes sharing a
// directory are safe too (atomic writes, content-addressed names) but do
// not share eviction bookkeeping.
type Store struct {
	dir        string
	maxEntries int
	log        *slog.Logger

	hits      *obs.Counter
	misses    *obs.Counter
	stores    *obs.Counter
	errors    *obs.Counter
	evictions *obs.Counter

	mu sync.Mutex
	// order lists resident keys oldest-first; the eviction queue. Seeded
	// from directory modtimes at Open, maintained by Store afterwards.
	order []string
	// resident indexes order for O(1) duplicate checks.
	resident map[string]bool
}

// Open creates (if needed) and opens a cache directory. Stale temporaries
// from a crashed writer are removed; existing entries are inventoried for
// eviction bookkeeping but not validated until read.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: open %s: %w", dir, err)
	}
	if _, err := obs.RemoveStaleTemps(dir); err != nil {
		return nil, fmt.Errorf("cache: open %s: %w", dir, err)
	}
	s := &Store{
		dir:        dir,
		maxEntries: opts.MaxEntries,
		log:        opts.Logger,
		resident:   make(map[string]bool),
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if r := opts.Registry; r != nil {
		s.hits = r.Counter("cache_hits")
		s.misses = r.Counter("cache_misses")
		s.stores = r.Counter("cache_stores")
		s.errors = r.Counter("cache_errors")
		s.evictions = r.Counter("cache_evictions")
	}
	if err := s.inventory(); err != nil {
		return nil, err
	}
	return s, nil
}

// inventory seeds the eviction queue from the directory: entry files sorted
// by modification time (ties broken by name, for determinism).
func (s *Store) inventory() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("cache: inventory %s: %w", s.dir, err)
	}
	type aged struct {
		key  string
		mod  int64
		name string
	}
	var found []aged
	for _, e := range entries {
		key, ok := keyFromName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, aged{key: key, mod: info.ModTime().UnixNano(), name: e.Name()})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].name < found[j].name
	})
	for _, f := range found {
		s.order = append(s.order, f.key)
		s.resident[f.key] = true
	}
	return nil
}

// entryName maps a key to its file name. Keys are hex SHA-256 (64 chars);
// anything else is rejected to keep path handling trivial.
func entryName(key string) (string, bool) {
	if len(key) != 64 {
		return "", false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	return key + ".json", true
}

func keyFromName(name string) (string, bool) {
	key, ok := strings.CutSuffix(name, ".json")
	if !ok {
		return "", false
	}
	if _, ok := entryName(key); !ok {
		return "", false
	}
	return key, true
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Lookup implements core.RunCache. Any defect — missing file, bad JSON,
// schema or key mismatch, payload checksum failure — is a miss; defects in
// an existing file additionally count as cache_errors and delete the entry.
func (s *Store) Lookup(key string) (*core.CachedRun, bool) {
	name, ok := entryName(key)
	if !ok {
		inc(s.misses)
		return nil, false
	}
	path := filepath.Join(s.dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		inc(s.misses)
		return nil, false
	}
	cr, err := decodeEntry(b, key)
	if err != nil {
		// The file exists but cannot be trusted: count it, drop it, miss.
		inc(s.errors)
		inc(s.misses)
		s.remove(key)
		return nil, false
	}
	inc(s.hits)
	return cr, true
}

// verifyEntry checks an on-disk envelope (schema, declared key, payload
// checksum) and returns the raw CachedRun payload.
func verifyEntry(b []byte, key string) (json.RawMessage, error) {
	var fe fileEntry
	if err := json.Unmarshal(b, &fe); err != nil {
		return nil, fmt.Errorf("cache: entry %s: %w", key[:12], err)
	}
	if fe.Schema != fileSchema {
		return nil, fmt.Errorf("cache: entry %s: schema %d, want %d", key[:12], fe.Schema, fileSchema)
	}
	if fe.Key != key {
		return nil, fmt.Errorf("cache: entry %s: declares key %.12s", key[:12], fe.Key)
	}
	sum := sha256.Sum256(fe.Payload)
	if hex.EncodeToString(sum[:]) != fe.SHA256 {
		return nil, fmt.Errorf("cache: entry %s: payload checksum mismatch", key[:12])
	}
	return fe.Payload, nil
}

func decodeEntry(b []byte, key string) (*core.CachedRun, error) {
	payload, err := verifyEntry(b, key)
	if err != nil {
		return nil, err
	}
	var cr core.CachedRun
	if err := json.Unmarshal(payload, &cr); err != nil {
		return nil, fmt.Errorf("cache: entry %s: payload: %w", key[:12], err)
	}
	if cr.Result == nil {
		return nil, fmt.Errorf("cache: entry %s: no result", key[:12])
	}
	return &cr, nil
}

// Payload returns the verified raw CachedRun payload for key — the bytes a
// peer cache endpoint serves so a federated coordinator can consult this
// node's store before simulating. The same failure semantics as Lookup:
// any defect is a miss, and a defective resident entry is counted and
// dropped.
func (s *Store) Payload(key string) (json.RawMessage, bool) {
	name, ok := entryName(key)
	if !ok {
		inc(s.misses)
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		inc(s.misses)
		return nil, false
	}
	payload, err := verifyEntry(b, key)
	if err != nil {
		inc(s.errors)
		inc(s.misses)
		s.remove(key)
		return nil, false
	}
	inc(s.hits)
	return payload, true
}

// Store implements core.RunCache: marshal, checksum, write atomically,
// evict past MaxEntries. Failures count as cache_errors and are otherwise
// swallowed — the caller already has its result.
func (s *Store) Store(key string, material []byte, cr *core.CachedRun) {
	name, ok := entryName(key)
	if !ok {
		inc(s.errors)
		return
	}
	payload, err := json.Marshal(cr)
	if err != nil {
		inc(s.errors)
		return
	}
	sum := sha256.Sum256(payload)
	fe := fileEntry{
		Schema:   fileSchema,
		Key:      key,
		Material: json.RawMessage(material),
		SHA256:   hex.EncodeToString(sum[:]),
		Payload:  payload,
	}
	b, err := json.Marshal(fe)
	if err != nil {
		inc(s.errors)
		return
	}
	if err := obs.AtomicWriteFile(filepath.Join(s.dir, name), b, 0o644); err != nil {
		inc(s.errors)
		return
	}
	inc(s.stores)

	s.mu.Lock()
	if !s.resident[key] {
		s.resident[key] = true
		s.order = append(s.order, key)
	}
	var evict []string
	if s.maxEntries > 0 {
		for len(s.order) > s.maxEntries {
			victim := s.order[0]
			s.order = s.order[1:]
			delete(s.resident, victim)
			evict = append(evict, victim)
		}
	}
	s.mu.Unlock()
	for _, victim := range evict {
		if name, ok := entryName(victim); ok {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
				inc(s.errors)
				continue
			}
		}
		inc(s.evictions)
	}
}

// remove drops a defective entry from disk and the eviction queue.
func (s *Store) remove(key string) {
	name, ok := entryName(key)
	if !ok {
		return
	}
	os.Remove(filepath.Join(s.dir, name))
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.resident[key] {
		return
	}
	delete(s.resident, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// Len reports the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// LookupCtx implements core.CtxRunCache: the same lookup, attributed to the
// request that caused it in the debug log. The context never changes what
// is returned.
func (s *Store) LookupCtx(ctx context.Context, key string) (*core.CachedRun, bool) {
	cr, ok := s.Lookup(key)
	if ok {
		s.log.Debug("cache hit", "trace_id", obs.TraceIDFrom(ctx), "key", short(key))
	} else {
		s.log.Debug("cache miss", "trace_id", obs.TraceIDFrom(ctx), "key", short(key))
	}
	return cr, ok
}

// StoreCtx implements core.CtxRunCache.
func (s *Store) StoreCtx(ctx context.Context, key string, material []byte, cr *core.CachedRun) {
	s.Store(key, material, cr)
	s.log.Debug("cache store", "trace_id", obs.TraceIDFrom(ctx), "key", short(key))
}

// short truncates a key for log lines, tolerating malformed keys.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Summary renders the store's state for a run manifest.
func (s *Store) Summary() *obs.CacheSummary {
	v := func(c *obs.Counter) uint64 {
		if c == nil {
			return 0
		}
		return c.Value()
	}
	return &obs.CacheSummary{
		Dir:       s.dir,
		Hits:      v(s.hits),
		Misses:    v(s.misses),
		Stores:    v(s.stores),
		Errors:    v(s.errors),
		Evictions: v(s.evictions),
	}
}
