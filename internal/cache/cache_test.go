package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nepdvs/internal/core"
	"nepdvs/internal/obs"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

func testConfig(t *testing.T) core.RunConfig {
	t.Helper()
	cfg, err := core.DefaultRunConfig(workload.IPFwdr, traffic.LevelHigh, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cycles = 300_000
	cfg.Policy = core.TDVSPolicy(1000, 40000)
	cfg.Formulas = core.PowerFormula(20, 0.5, 2.25, 0.05)
	return cfg
}

func counters(reg *obs.Registry) map[string]uint64 {
	return reg.Snapshot().Counters
}

// The headline determinism property: a result served from disk is
// byte-identical to the freshly simulated one.
func TestStoreHitMatchesFreshRun(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	core.SetRunCache(s)
	defer core.SetRunCache(nil)

	cfg := testConfig(t)
	fresh, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := counters(reg)
	if c["cache_misses"] != 1 || c["cache_stores"] != 1 {
		t.Fatalf("after first run: %v, want 1 miss + 1 store", c)
	}

	cached, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c = counters(reg)
	if c["cache_hits"] != 1 {
		t.Fatalf("after second run: %v, want 1 hit", c)
	}

	fb, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	if string(fb) != string(cb) {
		t.Error("cached result is not byte-identical to the fresh run")
	}
}

// A corrupted entry must be detected by checksum, counted, deleted, and
// treated as a miss — never served.
func TestStoreCorruptionDetected(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	core.SetRunCache(s)
	defer core.SetRunCache(nil)

	cfg := testConfig(t)
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	key, err := core.RunKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the payload (find a digit in the payload section
	// and change it) without breaking the JSON envelope.
	var fe fileEntry
	if err := json.Unmarshal(b, &fe); err != nil {
		t.Fatal(err)
	}
	mutated := []byte(string(fe.Payload))
	done := false
	for i, ch := range mutated {
		if ch >= '1' && ch <= '8' {
			mutated[i] = ch + 1
			done = true
			break
		}
	}
	if !done {
		t.Fatal("no mutable byte found in payload")
	}
	fe.Payload = mutated
	nb, err := json.Marshal(fe)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, nb, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Lookup(key); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	c := counters(reg)
	if c["cache_errors"] != 1 {
		t.Errorf("cache_errors = %d, want 1", c["cache_errors"])
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted entry not deleted")
	}
	// The store stays usable: the next run re-simulates and re-stores.
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup(key); !ok {
		t.Error("entry not restored after corruption recovery")
	}
}

// Oldest entries are evicted first once MaxEntries is exceeded.
func TestStoreEviction(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{Registry: reg, MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}

	mk := func(i int) string {
		key := fmt.Sprintf("%064x", i+1)
		s.Store(key, []byte(`{}`), &core.CachedRun{Result: &core.RunResult{}})
		return key
	}
	k1, k2, k3 := mk(1), mk(2), mk(3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, k1+".json")); !os.IsNotExist(err) {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range []string{k2, k3} {
		if _, err := os.Stat(filepath.Join(dir, k+".json")); err != nil {
			t.Errorf("entry %s missing: %v", k[:8], err)
		}
	}
	c := counters(reg)
	if c["cache_evictions"] != 1 {
		t.Errorf("cache_evictions = %d, want 1", c["cache_evictions"])
	}
}

// Reopening a directory restores the inventory, and entries survive across
// store instances.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := fmt.Sprintf("%064x", 42)
	s.Store(key, []byte(`{}`), &core.CachedRun{Result: &core.RunResult{}})

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	if _, ok := s2.Lookup(key); !ok {
		t.Error("entry not readable after reopen")
	}
}

// Concurrent stores and lookups must be race-free (run under -race) and
// keep Len within bounds.
func TestStoreConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), Options{Registry: reg, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				key := fmt.Sprintf("%060x%04x", g, i)
				s.Store(key, []byte(`{}`), &core.CachedRun{Result: &core.RunResult{}})
				s.Lookup(key)
			}
		}()
	}
	wg.Wait()
	if n := s.Len(); n > 8 {
		t.Errorf("Len = %d, want <= 8", n)
	}
	sum := s.Summary()
	if sum.Stores != 128 {
		t.Errorf("stores = %d, want 128", sum.Stores)
	}
}

// Invalid keys never touch the filesystem.
func TestStoreRejectsBadKeys(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd", string(make([]byte, 64))} {
		if _, ok := s.Lookup(key); ok {
			t.Errorf("Lookup(%q) hit", key)
		}
		s.Store(key, nil, &core.CachedRun{Result: &core.RunResult{}})
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("bad keys created %d files", len(entries))
	}
}

// TestStorePayload covers the peer-cache read path: the verified raw
// payload must decode to the same CachedRun Lookup returns, a corrupt
// entry must miss and be dropped, and a bogus key must miss cheaply.
func TestStorePayload(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ef", 32)
	want := &core.CachedRun{Result: &core.RunResult{MonitorFraction: 0.25}}
	s.Store(key, []byte(`{}`), want)

	raw, ok := s.Payload(key)
	if !ok {
		t.Fatal("Payload miss for a stored key")
	}
	var got core.CachedRun
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("payload does not decode: %v", err)
	}
	if got.Result == nil || got.Result.MonitorFraction != 0.25 {
		t.Fatalf("payload decoded to %+v", got.Result)
	}

	if _, ok := s.Payload("not-a-key"); ok {
		t.Error("Payload hit on a malformed key")
	}
	if _, ok := s.Payload(strings.Repeat("00", 32)); ok {
		t.Error("Payload hit on an absent key")
	}

	// Corrupt the entry on disk: the payload read detects it and drops it.
	name, _ := entryName(key)
	path := filepath.Join(s.Dir(), name)
	if err := os.WriteFile(path, []byte(`{"schema":1,"key":"`+key+`","sha256":"00","payload":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Payload(key); ok {
		t.Error("Payload served a corrupt entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry not dropped after Payload detection")
	}
}
