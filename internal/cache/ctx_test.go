package cache

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"nepdvs/internal/core"
	"nepdvs/internal/obs"
)

// TestStoreImplementsCtxRunCache asserts the context-aware path satisfies
// the core interface and attributes operations to the context's trace ID in
// the debug log.
func TestStoreImplementsCtxRunCache(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s, err := Open(t.TempDir(), Options{Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	var _ core.CtxRunCache = s

	cfg := core.RunConfig{Cycles: 123}
	key, err := core.RunKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithTraceID(context.Background(), "r-cachetest")

	if _, ok := s.LookupCtx(ctx, key); ok {
		t.Fatal("lookup hit on empty store")
	}
	s.StoreCtx(ctx, key, []byte(`{}`), &core.CachedRun{Result: &core.RunResult{Config: cfg}})
	if _, ok := s.LookupCtx(ctx, key); !ok {
		t.Fatal("lookup missed after store")
	}

	out := logBuf.String()
	for _, want := range []string{"cache miss", "cache store", "cache hit", "r-cachetest"} {
		if !strings.Contains(out, want) {
			t.Errorf("debug log missing %q:\n%s", want, out)
		}
	}
}
