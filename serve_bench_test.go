package nepdvs

// Benchmarks for the exploration service: cache-hit latency (how fast an
// identical run is served from the content-addressed store, versus
// simulating) and HTTP round-trip throughput through the full
// server → queue → executor path with a stub executor. With -benchserve the
// benchmarks' trajectory samples plus the service metrics (cache and jobs
// counters) are written to the given JSON file on the internal/perf schema,
// the serve-side counterpart of -benchobs.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/httptest"
	"testing"

	"nepdvs/internal/cache"
	"nepdvs/internal/core"
	"nepdvs/internal/jobs"
	"nepdvs/internal/obs"
	"nepdvs/internal/perf"
	"nepdvs/internal/server"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

var benchServe = flag.String("benchserve", "", "write the serve benchmark trajectory (internal/perf schema, incl. cache + jobs counters) to this JSON file (e.g. BENCH_serve.json)")

// serveReg aggregates service metrics across the serve benchmarks when
// -benchserve is set; TestMain snapshots it on exit.
var serveReg *obs.Registry

func serveRegistry() *obs.Registry {
	if *benchServe == "" {
		return obs.NewRegistry()
	}
	if serveReg == nil {
		serveReg = obs.NewRegistry()
	}
	return serveReg
}

// writeBenchServe dumps the serve trajectory: the recorded benchmark
// samples plus the aggregated service metrics. TestMain calls it only when
// -benchserve was set; calling it with the flag off is a harness bug (the
// old TestMain did exactly that on every plain `go test` run), so it
// refuses rather than silently writing to an empty path.
func writeBenchServe(rec *perf.Recorder) error {
	if *benchServe == "" {
		return errors.New("writeBenchServe called without -benchserve")
	}
	var snap *obs.Snapshot
	if serveReg != nil {
		s := serveReg.Snapshot()
		snap = &s
	}
	return perf.NewTrajectory("serve", rec, snap).WriteFile(*benchServe)
}

// TestBenchServeDumpFlagOff pins the flag-off contract: without -benchserve
// the dump must refuse to run and the serve benchmarks must get isolated
// registries rather than feeding a package-level aggregate.
func TestBenchServeDumpFlagOff(t *testing.T) {
	if *benchServe != "" {
		t.Skip("-benchserve set; flag-off path not reachable")
	}
	if err := writeBenchServe(perf.NewRecorder()); err == nil {
		t.Fatal("writeBenchServe succeeded with -benchserve unset; want refusal")
	}
	if serveReg != nil {
		t.Fatal("serveReg allocated with -benchserve unset")
	}
	if serveRegistry() == serveRegistry() {
		t.Fatal("serveRegistry reused a registry with -benchserve unset; want a fresh one per call")
	}
}

// BenchmarkCacheHit measures serving one simulation run from the on-disk
// content-addressed cache — the fixed cost a repeated exploration pays per
// point instead of a simulation.
func BenchmarkCacheHit(b *testing.B) {
	reg := serveRegistry()
	store, err := cache.Open(b.TempDir(), cache.Options{Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	core.SetRunCache(store)
	defer core.SetRunCache(nil)

	cfg, err := core.DefaultRunConfig(workload.IPFwdr, traffic.LevelHigh, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Cycles = *benchCycles
	cfg.Policy = core.TDVSPolicy(1000, 40000)
	if _, err := core.Run(cfg); err != nil {
		b.Fatal(err)
	}

	// Attach the domain-throughput registry only after the priming miss:
	// Metrics is normalized out of the cache key, so the timed runs still
	// hit, and every hit merges the stored counters (core_ref_cycles,
	// npu_pkts_arrived) — packets *served* per second, not simulated.
	var mreg *obs.Registry
	if perfRec != nil {
		mreg = obs.NewRegistry()
		cfg.Metrics = mreg
	}
	b.ResetTimer()
	s := beginSample(b.N)
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	s.end(b.Name(), mreg)
}

// BenchmarkServerThroughput measures HTTP round trips through the full
// submit → execute → poll → fetch path with an executor stub, isolating the
// service overhead from simulation cost. Each iteration uses a distinct
// config so dedup never collapses the work. No simulation happens, so the
// trajectory sample carries host-time metrics only.
func BenchmarkServerThroughput(b *testing.B) {
	reg := serveRegistry()
	q := jobs.New(jobs.Options{Workers: 4, Capacity: 1024, Registry: reg,
		Exec: func(ctx context.Context, spec jobs.Spec, progress func(done, retries int)) (any, error) {
			if progress != nil {
				progress(1, 0)
			}
			return &jobs.RunArtifact{}, nil
		}})
	defer q.Shutdown(context.Background())
	srv := httptest.NewServer(server.New(server.Options{Queue: q, Registry: reg}))
	defer srv.Close()

	b.ResetTimer()
	s := beginSample(b.N)
	for i := 0; i < b.N; i++ {
		body, _ := json.Marshal(server.RunRequest{Config: core.RunConfig{Cycles: int64(1_000_000 + i)}})
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sub server.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: %d", resp.StatusCode)
		}
		if _, err := q.Wait(context.Background(), sub.ID); err != nil {
			b.Fatal(err)
		}
		art, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/artifacts/result.json")
		if err != nil {
			b.Fatal(err)
		}
		art.Body.Close()
		if art.StatusCode != http.StatusOK {
			b.Fatalf("artifact: %d", art.StatusCode)
		}
	}
	s.end(b.Name(), nil)
}
