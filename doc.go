// Package nepdvs reproduces "Assertion-Based Design Exploration of DVS in
// Network Processor Architectures" (Yu, Wu, Chen, Hsieh, Yang, Balarin;
// DATE 2005): an IXP1200-class network-processor simulator with an
// activity-based power model, traffic-based and execution-based dynamic
// voltage scaling policies, and a Logic of Constraints (LOC) assertion
// language whose automatically generated checkers and distribution
// analyzers drive the design-space exploration.
//
// The implementation lives under internal/:
//
//	internal/sim          discrete-event kernel (ps resolution, deterministic)
//	internal/isa          microengine ISA and two-pass assembler
//	internal/npu          the NPU model: 6×4-context MEs, SRAM/SDRAM, IX bus,
//	                      ports, FIFOs, per-ME DVS with transition penalties
//	internal/power        C·V²·f energy accounting
//	internal/dvs          TDVS / EDVS / combined controllers and the VF ladder
//	internal/traffic      synthetic edge-router traffic (diurnal + MMPP)
//	internal/workload     ipfwdr, url, nat, md4 in microengine assembly
//	internal/trace        event traces (text + binary), streaming sinks
//	internal/loc          the LOC language: parser, compiler, streaming
//	                      checker/analyzer, standalone-checker codegen
//	internal/stats        histograms, CDFs, quantiles, surfaces
//	internal/core         run/sweep engine tying everything together
//	internal/experiments  one runner per paper table/figure + ablations
//
// The benchmarks in bench_test.go regenerate each paper artifact; the
// executables under cmd/ expose the same functionality on the command line,
// and examples/ holds runnable walkthroughs. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package nepdvs
