package nepdvs

// End-to-end tests of cmd/benchdiff over the golden trajectory fixtures in
// testdata/benchdiff: each scenario pins both the exit status (per the
// internal/cli convention — 0 clean, 3 regression, 2 schema/usage,
// 4 unreadable input) and the load-bearing lines of the report. Skipped in
// -short mode like the other CLI pipelines.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runBenchdiff invokes the built benchdiff binary on two fixtures and
// returns combined output plus the exit code (0 when the run succeeded).
func runBenchdiff(t *testing.T, bins string, args ...string) (string, int) {
	t.Helper()
	full := make([]string, 0, len(args))
	for _, a := range args {
		if strings.HasSuffix(a, ".json") && !filepath.IsAbs(a) {
			a = filepath.Join("testdata", "benchdiff", a)
		}
		full = append(full, a)
	}
	out, err := runTool(t, filepath.Join(bins, "benchdiff"), full...)
	if err == nil {
		return out, 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("benchdiff %v: %v\n%s", args, err, out)
	}
	return out, ee.ExitCode()
}

func TestBenchdiffCLI(t *testing.T) {
	bins := buildTools(t)

	t.Run("SelfIsClean", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", "baseline.json")
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, out)
		}
		if !strings.Contains(out, "0 regression(s)") {
			t.Errorf("summary missing clean regression count:\n%s", out)
		}
	})

	t.Run("Improvement", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", "improved.json")
		if code != 0 {
			t.Fatalf("exit = %d, want 0 (improvements never gate)\n%s", code, out)
		}
		if !strings.Contains(out, "better") {
			t.Errorf("report missing better classification:\n%s", out)
		}
	})

	t.Run("RegressionGates", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", "regressed.json")
		if code != 3 {
			t.Fatalf("exit = %d, want 3 on a 2x slowdown\n%s", code, out)
		}
		if !strings.Contains(out, "[REGRESSION]") || !strings.Contains(out, "1 regression(s)") {
			t.Errorf("regression report:\n%s", out)
		}
	})

	t.Run("NoiseInsideThreshold", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", "noisy.json")
		if code != 0 {
			t.Fatalf("exit = %d, want 0 on a ~4%% drift inside the 10%% band\n%s", code, out)
		}
		if !strings.Contains(out, "unchanged") {
			t.Errorf("noise should classify unchanged:\n%s", out)
		}
	})

	t.Run("NoiseGatesUnderTightThreshold", func(t *testing.T) {
		// The same drift fails once the caller tightens the band: the
		// threshold flag is live, not cosmetic.
		out, code := runBenchdiff(t, bins, "-threshold", "2", "baseline.json", "noisy.json")
		if code != 3 {
			t.Fatalf("exit = %d, want 3 with -threshold 2\n%s", code, out)
		}
	})

	t.Run("MissingBenchmark", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", "missing.json")
		if code != 3 {
			t.Fatalf("exit = %d, want 3 when a benchmark disappears\n%s", code, out)
		}
		if !strings.Contains(out, "missing") || !strings.Contains(out, "BenchmarkBeta") {
			t.Errorf("missing-benchmark report:\n%s", out)
		}
	})

	t.Run("MinSamplesFloor", func(t *testing.T) {
		// Raising the floor above the fixtures' 5 repeats demotes every
		// comparison — including the 2x slowdown — to low-samples.
		out, code := runBenchdiff(t, bins, "-min-samples", "6", "baseline.json", "regressed.json")
		if code != 0 {
			t.Fatalf("exit = %d, want 0 when samples are below the floor\n%s", code, out)
		}
		if !strings.Contains(out, "low-samples") {
			t.Errorf("low-samples report:\n%s", out)
		}
	})

	t.Run("SchemaMismatch", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", "schema99.json")
		if code != 2 {
			t.Fatalf("exit = %d, want 2 on a schema-version mismatch\n%s", code, out)
		}
		if !strings.Contains(out, "schema") {
			t.Errorf("schema error message:\n%s", out)
		}
	})

	t.Run("UnreadableInput", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json", filepath.Join(t.TempDir(), "nope.json"))
		if code != 4 {
			t.Fatalf("exit = %d, want 4 on a missing input file\n%s", code, out)
		}
	})

	t.Run("Usage", func(t *testing.T) {
		out, code := runBenchdiff(t, bins, "baseline.json")
		if code != 2 {
			t.Fatalf("exit = %d, want 2 with one argument\n%s", code, out)
		}
		if !strings.Contains(out, "usage") {
			t.Errorf("usage message:\n%s", out)
		}
	})
}
