# Developer entry points. `make check` is the full verification gate the CI
# workflow runs: vet plus the race-enabled test suite. `make lint` is the
# static-analysis gate: gofmt, nepvet over the repo, and the known-bad
# fixtures that prove the gate can fail.

GO ?= go

.PHONY: build vet test race check lint analyze fuzz bench bench-obs bench-serve bench-baseline bench-gate profile serve-smoke serve-cluster-smoke timeline-smoke assert-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The suite is race-clean; -race is the acceptance mode for the concurrent
# metrics registry and the parallel sweep engine.
race:
	$(GO) test -race ./...

check: vet race

# Static analysis: gofmt must be a no-op, nepvet must find nothing in the
# tree (modulo lint.allow), and the deliberately-bad fixtures must fail red.
lint: analyze
	@fmtout=$$(gofmt -l . 2>/dev/null); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needs to run on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) run ./cmd/nepvet
	sh scripts/lint_fixtures.sh

# Semantic static analysis of every shipped LOC formula profile: interval
# verdicts, vacuity against the default chip's event vocabulary, tautology/
# contradiction/subsumption. locheck exits 3 on any finding.
analyze:
	@set -e; for f in profiles/*.loc examples/*/*.loc; do \
		[ -e "$$f" ] || continue; \
		echo "locheck -analyze $$f"; \
		$(GO) run ./cmd/locheck -analyze -f "$$f"; \
	done

# Short fuzz smoke over the binary-trace parser, the LOC front end and the
# two lint pipelines; CI runs the same budget. Leave -fuzztime off for a
# real fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzBinaryReader -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzLOCLexer -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzLOCParse -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzFormulaLint -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzWitnessRender -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzAnalyzeVsVM -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzAsmLint -fuzztime=$(FUZZTIME) ./internal/isa/
	$(GO) test -fuzz=FuzzPolicyValidate -fuzztime=$(FUZZTIME) ./internal/policy/

# Single-shot bench sweeps: quick numbers, too noisy to gate on (use
# bench-gate for that).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Like bench, but writes the trajectory (internal/perf schema) plus
# aggregated per-run metrics to BENCH_obs.json.
bench-obs:
	$(GO) test -bench=. -benchtime=1x -run '^$$' -benchobs BENCH_obs.json .

# Exploration-service benchmarks (cache-hit latency, HTTP throughput), with
# trajectory samples and service counters written to BENCH_serve.json.
bench-serve:
	$(GO) test -bench='BenchmarkCacheHit|BenchmarkServerThroughput' -benchtime=10x -run '^$$' -benchserve BENCH_serve.json .

# The regression gate (DESIGN.md §14). GATE_BENCHES covers the heaviest
# end-to-end paths — the Figure 6 pipeline, the idle study, the shared §4.1
# sweep — plus the registry-policy tick hot path and the streaming LOC
# checker with witness capture. GATE_COUNT repeats give the trajectory
# medians their noise immunity; GATE_THRESHOLD is deliberately generous
# because CI machines vary — the gate exists to catch order-of-magnitude
# mistakes (accidental O(n²), a dropped cache), not 10% drift.
GATE_BENCHES ?= BenchmarkFig6$$|BenchmarkIdleStudy$$|BenchmarkTDVSSweep$$|BenchmarkPolicyTick$$|BenchmarkLOCCheck$$
GATE_COUNT ?= 5
GATE_CYCLES ?= 200000
GATE_THRESHOLD ?= 40
GATE_MIN_SAMPLES ?= 3

# Refresh the committed baseline (commit the result; see DESIGN.md §14 for
# when a refresh is legitimate).
bench-baseline:
	$(GO) test -bench='$(GATE_BENCHES)' -benchtime=1x -count=$(GATE_COUNT) -run '^$$' \
		-benchcycles $(GATE_CYCLES) -benchperf BENCH_sim.json .

# Re-measure the gate benches and diff against the committed baseline;
# fails (exit 3) on a gated regression. Set BENCH_GATE_SKIP=1 to skip
# (e.g. on a known-slow host).
bench-gate:
ifdef BENCH_GATE_SKIP
	@echo "bench-gate: skipped (BENCH_GATE_SKIP set)"
else
	$(GO) test -bench='$(GATE_BENCHES)' -benchtime=1x -count=$(GATE_COUNT) -run '^$$' \
		-benchcycles $(GATE_CYCLES) -benchperf BENCH_gate.json .
	$(GO) run ./cmd/benchdiff -threshold $(GATE_THRESHOLD) -min-samples $(GATE_MIN_SAMPLES) \
		BENCH_sim.json BENCH_gate.json
endif

# Capture cpu/mem profiles of a representative heavy run into the
# gitignored profiles/ directory, with -perf throughput printed alongside.
PROFILE_CYCLES ?= 2000000
profile:
	mkdir -p profiles
	$(GO) run ./cmd/nepsim -bench ipfwdr -level high -policy tdvs -threshold 1000 -window 40000 \
		-cycles $(PROFILE_CYCLES) -perf -cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof

# End-to-end service smoke: boot dvsd with a cache, run one uncached and one
# cached sweep, assert the cache hit counter and byte-identical artifacts.
serve-smoke:
	sh scripts/serve_smoke.sh

# Federation smoke: boot a 3-node cluster, SIGKILL one node mid-sweep, and
# assert the federated artifact is byte-identical to a single-node run
# (DESIGN.md §15).
serve-cluster-smoke:
	sh scripts/cluster_smoke.sh

# Timeline smoke: a ~1k-packet nepsim -timeline run validated with
# timelinecheck (spans on every ME track, byte-identical across reruns) plus
# a tracestat -json/-timeline round trip.
timeline-smoke:
	sh scripts/timeline_smoke.sh

# Assertion smoke: a deliberately violating LOC preset driven through nepsim
# and locheck, validating the report JSON schema, byte-identity of the
# VM-evaluated and locgen-generated witness reports, assertion instants in
# the timeline, and rerun determinism.
assert-smoke:
	sh scripts/assert_smoke.sh
