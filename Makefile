# Developer entry points. `make check` is the full verification gate the CI
# workflow runs: vet plus the race-enabled test suite.

GO ?= go

.PHONY: build vet test race check bench bench-obs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The suite is race-clean; -race is the acceptance mode for the concurrent
# metrics registry and the parallel sweep engine.
race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Like bench, but also aggregates per-run metrics into BENCH_obs.json.
bench-obs:
	$(GO) test -bench=. -benchtime=1x -run '^$$' -benchobs BENCH_obs.json .
