# Developer entry points. `make check` is the full verification gate the CI
# workflow runs: vet plus the race-enabled test suite. `make lint` is the
# static-analysis gate: gofmt, nepvet over the repo, and the known-bad
# fixtures that prove the gate can fail.

GO ?= go

.PHONY: build vet test race check lint fuzz bench bench-obs bench-serve serve-smoke timeline-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The suite is race-clean; -race is the acceptance mode for the concurrent
# metrics registry and the parallel sweep engine.
race:
	$(GO) test -race ./...

check: vet race

# Static analysis: gofmt must be a no-op, nepvet must find nothing in the
# tree (modulo lint.allow), and the deliberately-bad fixtures must fail red.
lint:
	@fmtout=$$(gofmt -l . 2>/dev/null); \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needs to run on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) run ./cmd/nepvet
	sh scripts/lint_fixtures.sh

# Short fuzz smoke over the binary-trace parser, the LOC front end and the
# two lint pipelines; CI runs the same budget. Leave -fuzztime off for a
# real fuzzing session.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzBinaryReader -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz=FuzzLOCLexer -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzLOCParse -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzFormulaLint -fuzztime=$(FUZZTIME) ./internal/loc/
	$(GO) test -fuzz=FuzzAsmLint -fuzztime=$(FUZZTIME) ./internal/isa/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Like bench, but also aggregates per-run metrics into BENCH_obs.json.
bench-obs:
	$(GO) test -bench=. -benchtime=1x -run '^$$' -benchobs BENCH_obs.json .

# Exploration-service benchmarks (cache-hit latency, HTTP throughput),
# with service counters aggregated into BENCH_serve.json.
bench-serve:
	$(GO) test -bench='BenchmarkCacheHit|BenchmarkServerThroughput' -benchtime=10x -run '^$$' -benchserve BENCH_serve.json .

# End-to-end service smoke: boot dvsd with a cache, run one uncached and one
# cached sweep, assert the cache hit counter and byte-identical artifacts.
serve-smoke:
	sh scripts/serve_smoke.sh

# Timeline smoke: a ~1k-packet nepsim -timeline run validated with
# timelinecheck (spans on every ME track, byte-identical across reruns) plus
# a tracestat -json/-timeline round trip.
timeline-smoke:
	sh scripts/timeline_smoke.sh
