package nepdvs

// End-to-end tests of the command-line tools: build every binary with the
// Go toolchain and drive realistic pipelines (simulate → trace → check /
// summarize, generate traffic → replay, generate a checker → build it).
// Skipped in -short mode.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles all commands into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries with the go toolchain")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func runTool(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIPipeline(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	tracePath := filepath.Join(work, "run.trc")

	// 1. Simulate with a trace.
	out, err := runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-level", "high", "-cycles", "600000", "-trace", tracePath)
	if err != nil {
		t.Fatalf("nepsim: %v\n%s", err, out)
	}
	for _, want := range []string{"forwarded", "average power", "ME0"} {
		if !strings.Contains(out, want) {
			t.Errorf("nepsim output missing %q:\n%s", want, out)
		}
	}

	// 2. Summarize the trace.
	out, err = runTool(t, filepath.Join(bins, "tracestat"), tracePath)
	if err != nil {
		t.Fatalf("tracestat: %v\n%s", err, out)
	}
	if !strings.Contains(out, "forward") || !strings.Contains(out, "Mbps") {
		t.Errorf("tracestat output:\n%s", out)
	}

	// 3. Check a passing assertion; expect exit 0.
	out, err = runTool(t, filepath.Join(bins, "locheck"),
		"-e", "total_pkt(forward[i]) == i + 1", tracePath)
	if err != nil {
		t.Fatalf("locheck pass case: %v\n%s", err, out)
	}
	if !strings.Contains(out, "PASSED") {
		t.Errorf("locheck output:\n%s", out)
	}

	// 4. Check a failing assertion; expect exit 1.
	out, err = runTool(t, filepath.Join(bins, "locheck"),
		"-e", "energy(forward[i+1]) - energy(forward[i]) <= 0", tracePath)
	if err == nil {
		t.Fatalf("locheck should exit non-zero on violations:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("locheck exit = %v, want 1\n%s", err, out)
	}
	if !strings.Contains(out, "FAILED") {
		t.Errorf("locheck failure output:\n%s", out)
	}

	// 5. Distribution analyzer over the same trace.
	out, err = runTool(t, filepath.Join(bins, "locheck"),
		"-e", "(energy(forward[i+50]) - energy(forward[i])) / (time(forward[i+50]) - time(forward[i])) cdf [0.5, 2.25, 0.25]",
		tracePath)
	if err != nil {
		t.Fatalf("locheck dist: %v\n%s", err, out)
	}
	if !strings.Contains(out, "cdf") {
		t.Errorf("locheck dist output:\n%s", out)
	}
}

// TestCLIAssertionReport pins the -report / -assertions contract: the exit
// codes documented in the locheck doc comment, the report being written even
// when the assertion fails (exit 1), and the schema of the JSON artifact.
func TestCLIAssertionReport(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	tracePath := filepath.Join(work, "run.trc")
	locheck := filepath.Join(bins, "locheck")

	out, err := runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-cycles", "600000", "-trace", tracePath)
	if err != nil {
		t.Fatalf("nepsim: %v\n%s", err, out)
	}

	exitCode := func(err error) int {
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		return -1
	}
	readReport := func(path string) map[string]any {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("report not written: %v", err)
		}
		var rep map[string]any
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("report not JSON: %v\n%s", err, b)
		}
		if rep["schema"] != float64(2) {
			t.Fatalf("report schema = %v, want 2", rep["schema"])
		}
		return rep
	}

	// Passing check: exit 0, report written with verdict pass.
	passRep := filepath.Join(work, "pass.json")
	out, err = runTool(t, locheck, "-e", "total_pkt(forward[i]) == i + 1",
		"-report", passRep, tracePath)
	if code := exitCode(err); code != 0 {
		t.Fatalf("pass case exit = %d, want 0\n%s", code, out)
	}
	if rep := readReport(passRep); !strings.Contains(string(mustJSON(t, rep)), `"verdict":"pass"`) {
		t.Errorf("pass report verdict:\n%v", rep)
	}

	// Failing check: exit 1 and the report is still written, with witnesses.
	failRep := filepath.Join(work, "fail.json")
	out, err = runTool(t, locheck, "-e", "energy(forward[i+1]) - energy(forward[i]) <= 0",
		"-report", failRep, tracePath)
	if code := exitCode(err); code != 1 {
		t.Fatalf("fail case exit = %d, want 1\n%s", code, out)
	}
	failJSON := string(mustJSON(t, readReport(failRep)))
	for _, want := range []string{`"verdict":"fail"`, `"witness":`, `"worst":`, `"density":`} {
		if !strings.Contains(failJSON, want) {
			t.Errorf("fail report missing %s:\n%s", want, failJSON)
		}
	}

	// Unwritable report path: exit 4 (I/O), not 1.
	out, err = runTool(t, locheck, "-e", "total_pkt(forward[i]) == i + 1",
		"-report", filepath.Join(work, "no-such-dir", "r.json"), tracePath)
	if code := exitCode(err); code != 4 {
		t.Fatalf("unwritable report exit = %d, want 4\n%s", code, out)
	}

	// -lint with -report is a usage error: exit 2.
	out, err = runTool(t, locheck, "-lint", "-e", "total_pkt(forward[i]) == i + 1",
		"-report", filepath.Join(work, "r.json"))
	if code := exitCode(err); code != 2 {
		t.Fatalf("-lint -report exit = %d, want 2\n%s", code, out)
	}

	// nepsim -assertions requires -formulas.
	out, err = runTool(t, filepath.Join(bins, "nepsim"),
		"-cycles", "100000", "-assertions", filepath.Join(work, "a.json"))
	if exitCode(err) == 0 {
		t.Fatalf("nepsim -assertions without -formulas succeeded:\n%s", out)
	}

	// nepsim evaluates formulas live and writes the same report shape.
	formulas := filepath.Join(work, "f.loc")
	if err := os.WriteFile(formulas,
		[]byte("order: cycle(forward[i+1]) - cycle(forward[i]) >= 0;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	simRep := filepath.Join(work, "sim.json")
	out, err = runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-cycles", "600000", "-formulas", formulas, "-assertions", simRep)
	if err != nil {
		t.Fatalf("nepsim -assertions: %v\n%s", err, out)
	}
	if rep := readReport(simRep); !strings.Contains(string(mustJSON(t, rep)), `"name":"order"`) {
		t.Errorf("nepsim report:\n%v", rep)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCLITrafficReplay(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	pkts := filepath.Join(work, "packets.txt")

	out, err := runTool(t, filepath.Join(bins, "trafficgen"),
		"-mbps", "700", "-ms", "1.5", "-seed", "7", "-o", pkts)
	if err != nil {
		t.Fatalf("trafficgen: %v\n%s", err, out)
	}
	run := func() string {
		out, err := runTool(t, filepath.Join(bins, "nepsim"),
			"-bench", "nat", "-cycles", "900000", "-packets", pkts)
		if err != nil {
			t.Fatalf("nepsim replay: %v\n%s", err, out)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Error("replayed runs are not byte-identical")
	}
	if !strings.Contains(a, "offered") {
		t.Errorf("replay output:\n%s", a)
	}
}

func TestCLIFormulaFiles(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	formulas := filepath.Join(work, "f.loc")
	if err := os.WriteFile(formulas, []byte(`
power: (energy(forward[i+50]) - energy(forward[i])) /
       (time(forward[i+50]) - time(forward[i])) cdf [0.5, 2.25, 0.25];
order: cycle(forward[i+1]) - cycle(forward[i]) >= 0;
`), 0o644); err != nil {
		t.Fatal(err)
	}
	// nepsim evaluates the formula file live.
	out, err := runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-cycles", "600000", "-formulas", formulas)
	if err != nil {
		t.Fatalf("nepsim -formulas: %v\n%s", err, out)
	}
	if !strings.Contains(out, "formula power") || !strings.Contains(out, "formula order") {
		t.Errorf("nepsim formula output:\n%s", out)
	}
	// locgen picks one formula by name from the file.
	gen := filepath.Join(work, "an.go")
	out, err = runTool(t, filepath.Join(bins, "locgen"), "-f", formulas, "-name", "power", "-o", gen)
	if err != nil {
		t.Fatalf("locgen -f -name: %v\n%s", err, out)
	}
	src, err := os.ReadFile(gen)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "isDistFormula = true") {
		t.Error("locgen picked the wrong formula")
	}
	// Ambiguous selection without -name fails.
	if out, err := runTool(t, filepath.Join(bins, "locgen"), "-f", formulas); err == nil {
		t.Errorf("locgen without -name on a multi-formula file should fail:\n%s", out)
	}
}

func TestCLILocgenBuilds(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	gen := filepath.Join(work, "checker.go")
	out, err := runTool(t, filepath.Join(bins, "locgen"),
		"-e", "abs(time(forward[i+1]) - time(forward[i])) >= 0", "-o", gen)
	if err != nil {
		t.Fatalf("locgen: %v\n%s", err, out)
	}
	// The generated program must compile standalone.
	bin := filepath.Join(work, "checker")
	cmd := exec.Command("go", "build", "-o", bin, gen)
	cmd.Dir = work
	if bout, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("generated checker does not build: %v\n%s", err, bout)
	}
}

func TestCLIDvsexploreStaticFigs(t *testing.T) {
	bins := buildTools(t)
	outdir := t.TempDir()
	out, err := runTool(t, filepath.Join(bins, "dvsexplore"),
		"-outdir", outdir, "fig1", "fig2", "fig5")
	if err != nil {
		t.Fatalf("dvsexplore: %v\n%s", err, out)
	}
	for _, f := range []string{"fig1.dat", "fig2.dat", "fig2.svg", "fig5.dat"} {
		if _, err := os.Stat(filepath.Join(outdir, f)); err != nil {
			t.Errorf("missing output %s", f)
		}
	}
	// -list enumerates experiments.
	out, err = runTool(t, filepath.Join(bins, "dvsexplore"), "-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig11") || !strings.Contains(out, "ablation-oracle") {
		t.Errorf("-list output:\n%s", out)
	}
}

// TestCLIPolicyRegistry drives the registry surface of both front ends:
// -list-policies enumerates every policy with its parameter docs, -p
// parameters reach the policy, and a misspelled parameter fails with a
// did-you-mean hint.
func TestCLIPolicyRegistry(t *testing.T) {
	bins := buildTools(t)

	for _, tool := range []string{"nepsim", "dvsexplore"} {
		out, err := runTool(t, filepath.Join(bins, tool), "-list-policies")
		if err != nil {
			t.Fatalf("%s -list-policies: %v\n%s", tool, err, out)
		}
		for _, want := range []string{"tdvs", "edvs", "combined", "oracle", "pid", "psm", "(required)", "aliases:"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s -list-policies missing %q:\n%s", tool, want, out)
			}
		}
	}

	// A registry policy with -p overrides runs end to end.
	out, err := runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-level", "high", "-cycles", "400000",
		"-policy", "pid", "-p", "kp=4", "-p", "setpoint_frac=0.15")
	if err != nil {
		t.Fatalf("nepsim -policy pid: %v\n%s", err, out)
	}
	if !strings.Contains(out, "policy         pid") {
		t.Errorf("nepsim output missing the pid policy line:\n%s", out)
	}

	// A legacy alias still resolves through the registry.
	out, err = runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-level", "low", "-cycles", "400000",
		"-policy", "TDVS", "-threshold", "1000", "-window", "40000")
	if err != nil {
		t.Fatalf("nepsim -policy TDVS: %v\n%s", err, out)
	}
	if !strings.Contains(out, "policy         tdvs") {
		t.Errorf("nepsim output missing the canonical tdvs policy line:\n%s", out)
	}

	// Misspelled parameters die with a hint instead of simulating.
	out, err = runTool(t, filepath.Join(bins, "nepsim"),
		"-bench", "ipfwdr", "-cycles", "400000", "-policy", "pid", "-p", "window_cycle=100")
	if err == nil {
		t.Fatalf("nepsim with a misspelled parameter succeeded:\n%s", out)
	}
	if !strings.Contains(out, "did you mean") {
		t.Errorf("misspelled parameter error lacks a did-you-mean hint:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	bins := buildTools(t)
	cases := []struct {
		tool string
		args []string
	}{
		{"nepsim", []string{"-bench", "bogus"}},
		{"nepsim", []string{"-policy", "bogus"}},
		{"nepsim", []string{"-level", "bogus"}},
		{"locheck", []string{}},
		{"locheck", []string{"-e", "syntax error (", "/dev/null"}},
		{"locgen", []string{}},
		{"trafficgen", []string{"-mbps", "-5"}},
		{"dvsexplore", []string{"nonexistent-experiment"}},
		{"tracestat", []string{"/nonexistent/file"}},
	}
	for _, c := range cases {
		out, err := runTool(t, filepath.Join(bins, c.tool), c.args...)
		if err == nil {
			t.Errorf("%s %v: expected failure\n%s", c.tool, c.args, out)
		}
	}
}

// TestCLILintExitCodes pins the exit-code contract of the static-analysis
// front ends: 0 clean, 2 parse/usage, 3 lint finding, 4 I/O failure (the
// internal/cli convention).
func TestCLILintExitCodes(t *testing.T) {
	bins := buildTools(t)
	locheck := filepath.Join(bins, "locheck")
	locgen := filepath.Join(bins, "locgen")
	exitCode := func(err error) int {
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		return -1
	}

	// Clean formula lints silently with status 0.
	out, err := runTool(t, locheck, "-lint", "-e", "cycle(forward[i+1]) - cycle(forward[i]) >= 0")
	if code := exitCode(err); code != 0 {
		t.Errorf("locheck -lint clean: exit %d, want 0\n%s", code, out)
	}

	// A lint finding exits 3 and names the rule.
	out, err = runTool(t, locheck, "-lint", "-e", "cycl(forward[i]) >= 0")
	if code := exitCode(err); code != 3 {
		t.Errorf("locheck -lint finding: exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "loc/unknown-ann") || !strings.Contains(out, "did you mean") {
		t.Errorf("locheck -lint output:\n%s", out)
	}

	// A parse error is a malformed invocation: exit 2, like flag errors.
	out, err = runTool(t, locheck, "-lint", "-e", "broken (((")
	if code := exitCode(err); code != 2 {
		t.Errorf("locheck -lint parse error: exit %d, want 2\n%s", code, out)
	}

	// An unreadable formula file is an I/O failure: exit 4.
	out, err = runTool(t, locheck, "-lint", "-f", "/nonexistent/f.loc")
	if code := exitCode(err); code != 4 {
		t.Errorf("locheck missing -f: exit %d, want 4\n%s", code, out)
	}

	// locgen refuses to generate code from a formula with findings.
	gen := filepath.Join(t.TempDir(), "out.go")
	out, err = runTool(t, locgen, "-e", "cycl(forward[i]) >= 0", "-o", gen)
	if code := exitCode(err); code != 3 {
		t.Errorf("locgen lint finding: exit %d, want 3\n%s", code, out)
	}
	if _, serr := os.Stat(gen); serr == nil {
		t.Error("locgen wrote output despite lint findings")
	}
	out, err = runTool(t, locgen, "-f", "/nonexistent/f.loc")
	if code := exitCode(err); code != 4 {
		t.Errorf("locgen missing -f: exit %d, want 4\n%s", code, out)
	}
}

// TestCLIRunTimeout: a run that cannot finish inside -run-timeout must die
// with exit status 1 and a watchdog message instead of hanging forever.
func TestCLIRunTimeout(t *testing.T) {
	bins := buildTools(t)
	// 2·10⁹ cycles would simulate for minutes; the 300 ms watchdog must
	// cut it down.
	out, err := runTool(t, filepath.Join(bins, "dvsexplore"),
		"-quiet", "-cycles", "2000000000", "-run-timeout", "300ms", "idle")
	if err == nil {
		t.Fatalf("timed-out exploration exited 0:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want status 1\n%s", err, out)
	}
	if !strings.Contains(out, "watchdog") || !strings.Contains(out, "deadline") {
		t.Errorf("no watchdog/deadline message in output:\n%s", out)
	}
}

// TestCLIFaultInjection drives nepsim with fault plans: a hardware plan
// perturbs the run and reports fault stats; an injected hang is caught by
// -run-timeout; an injected panic is reported as an error, not a crash dump
// from a dying process.
func TestCLIFaultInjection(t *testing.T) {
	bins := buildTools(t)
	work := t.TempDir()
	nepsim := filepath.Join(bins, "nepsim")

	dropPlan := filepath.Join(work, "drop.json")
	if err := os.WriteFile(dropPlan, []byte(`{
		"Seed": 1,
		"Faults": [{"Kind": "port_drop", "Unit": "port0", "OnsetCycle": 10000, "DurationCycles": 400000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, nepsim, "-bench", "ipfwdr", "-level", "high",
		"-cycles", "600000", "-faults", dropPlan)
	if err != nil {
		t.Fatalf("nepsim with drop plan: %v\n%s", err, out)
	}
	if !strings.Contains(out, "faults") || !strings.Contains(out, "armed") {
		t.Errorf("no fault stats in output:\n%s", out)
	}

	hangPlan := filepath.Join(work, "hang.json")
	if err := os.WriteFile(hangPlan, []byte(`{
		"Seed": 1,
		"Faults": [{"Kind": "hang", "OnsetCycle": 10000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runTool(t, nepsim, "-bench", "ipfwdr", "-cycles", "600000",
		"-faults", hangPlan, "-run-timeout", "300ms")
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("hung nepsim exit = %v, want status 1\n%s", err, out)
	}
	if !strings.Contains(out, "watchdog") {
		t.Errorf("no watchdog message:\n%s", out)
	}

	panicPlan := filepath.Join(work, "panic.json")
	if err := os.WriteFile(panicPlan, []byte(`{
		"Seed": 1,
		"Faults": [{"Kind": "panic", "OnsetCycle": 10000}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runTool(t, nepsim, "-bench", "ipfwdr", "-cycles", "600000",
		"-faults", panicPlan)
	ee, ok = err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("panicked nepsim exit = %v, want status 1\n%s", err, out)
	}
	if !strings.Contains(out, "run panicked") || strings.Contains(out, "goroutine ") {
		t.Errorf("want a recovered-panic error, not a crash dump:\n%s", out)
	}
}

// TestCLICheckpointResume: a second dvsexplore run against the same
// checkpoint directory replays finished experiments instead of
// re-simulating them.
func TestCLICheckpointResume(t *testing.T) {
	bins := buildTools(t)
	ck := filepath.Join(t.TempDir(), "ck")
	outdir := t.TempDir()
	args := []string{"-quiet", "-cycles", "200000", "-checkpoint", ck,
		"-outdir", outdir, "idle", "fig1"}

	out, err := runTool(t, filepath.Join(bins, "dvsexplore"), args...)
	if err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}
	if strings.Contains(out, "resumed from checkpoint") {
		t.Errorf("first run claims to have resumed:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(ck, "idle.json")); err != nil {
		t.Error("no checkpoint entry for idle")
	}

	out, err = runTool(t, filepath.Join(bins, "dvsexplore"), args...)
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}
	for _, id := range []string{"idle", "fig1"} {
		if !strings.Contains(out, id+" resumed from checkpoint") {
			t.Errorf("%s was not resumed:\n%s", id, out)
		}
	}
	// Results are still written on resume.
	if _, err := os.Stat(filepath.Join(outdir, "idle.dat")); err != nil {
		t.Error("resumed run wrote no idle.dat")
	}
}
