package nepdvs

// The shipped formula profiles under profiles/ are the user-facing form of
// the presets the code generates programmatically; these tests pin the two
// together so neither can drift, and hold every shipped profile to the
// same static-analysis bar `make analyze` enforces.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nepdvs/internal/core"
	"nepdvs/internal/experiments"
	"nepdvs/internal/loc"
)

// profileFormulas reads a profile file and strips comments and blank lines,
// leaving one formula per line.
func profileFormulas(t *testing.T, path string) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		out = append(out, line)
	}
	return out
}

func TestProfilesInSync(t *testing.T) {
	cases := []struct {
		path string
		want string
	}{
		{"profiles/standard.loc", core.StandardFormulas() + "\n" + core.IdleFormula(0)},
		{"profiles/robustness.loc", experiments.RobustnessFormulas()},
	}
	for _, tc := range cases {
		got := profileFormulas(t, tc.path)
		want := strings.Split(tc.want, "\n")
		if len(got) != len(want) {
			t.Errorf("%s holds %d formulas, generator emits %d", tc.path, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != strings.TrimSpace(want[i]) {
				t.Errorf("%s formula %d drifted from the generator:\n  file: %s\n  code: %s",
					tc.path, i, got[i], want[i])
			}
		}
	}
}

// TestProfilesAnalyzeClean is the in-process form of `make analyze`: every
// shipped profile must survive the full semantic pass against the default
// chip's event vocabulary with zero findings.
func TestProfilesAnalyzeClean(t *testing.T) {
	paths, err := filepath.Glob("profiles/*.loc")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no shipped profiles found: %v", err)
	}
	sch := core.EventSchema()
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		diags, parsed := loc.AnalyzeFile(string(b), sch)
		if !parsed {
			t.Errorf("%s does not parse: %v", path, diags)
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: %s", path, d)
		}
	}
}
