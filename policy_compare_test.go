package nepdvs

// End-to-end acceptance for the policy_compare experiment (DESIGN.md §16):
// the ranking artifact must be byte-identical across repeat local runs, and
// a report assembled from results served over the dvsd HTTP path must match
// the locally-simulated report byte for byte. Both properties fall out of
// deterministic simulation plus PolicyCompareReport being a pure function
// of the run results — these tests pin them against regressions.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nepdvs/internal/core"
	"nepdvs/internal/experiments"
	"nepdvs/internal/jobs"
	"nepdvs/internal/server"
)

func policyCompareOpts() experiments.Options {
	return experiments.Options{Cycles: 200_000, Parallelism: 4, Seed: 1}
}

func TestPolicyCompareDeterministic(t *testing.T) {
	o := policyCompareOpts()
	first, err := experiments.Run("policy_compare", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[0].ID != "policy_compare" {
		t.Fatalf("unexpected reports: %v", first)
	}
	body := first[0].Body

	// Every registered comparison policy appears, each with a rank.
	for _, pol := range experiments.PolicyComparePolicies() {
		if !strings.Contains(body, "\t"+pol.String()+"\t") {
			t.Errorf("report lacks a ranked row for %s:\n%s", pol, body)
		}
	}
	for _, rank := range []string{"1\t", "2\t", "3\t", "4\t"} {
		if !strings.Contains(body, "\n"+rank) && !strings.HasPrefix(body, rank) {
			t.Errorf("report lacks rank %q:\n%s", strings.TrimSpace(rank), body)
		}
	}

	second, err := experiments.Run("policy_compare", o)
	if err != nil {
		t.Fatal(err)
	}
	if body != second[0].Body {
		t.Error("policy_compare artifact differs across repeat runs")
	}
}

// TestPolicyCompareServicePath pushes the exact policy_compare run
// configurations through a dvsd server (submit → execute → artifact fetch)
// and asserts the report rendered from the served results is byte-identical
// to the locally-simulated one.
func TestPolicyCompareServicePath(t *testing.T) {
	o := policyCompareOpts()
	local, err := experiments.PolicyCompare(o)
	if err != nil {
		t.Fatal(err)
	}

	q := jobs.New(jobs.Options{Workers: 4, Capacity: 64, Exec: jobs.Execute})
	defer q.Shutdown(context.Background())
	srv := httptest.NewServer(server.New(server.Options{Queue: q}))
	defer srv.Close()

	cfgs, err := experiments.PolicyCompareConfigs(o)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*core.RunResult, len(cfgs))
	for i, cfg := range cfgs {
		body, err := json.Marshal(server.RunRequest{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sub server.SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", cfg.Policy, resp.StatusCode)
		}
		if _, err := q.Wait(context.Background(), sub.ID); err != nil {
			t.Fatal(err)
		}
		art, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/artifacts/result.json")
		if err != nil {
			t.Fatal(err)
		}
		if art.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: status %d", cfg.Policy, art.StatusCode)
		}
		var got jobs.RunArtifact
		if err := json.NewDecoder(art.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		art.Body.Close()
		if got.Result == nil {
			t.Fatalf("artifact %s: empty result", cfg.Policy)
		}
		results[i] = got.Result
	}

	served, err := experiments.PolicyCompareReport(results)
	if err != nil {
		t.Fatal(err)
	}
	if served.Body != local.Body {
		t.Errorf("service-path report differs from local simulation:\n--- local ---\n%s\n--- served ---\n%s", local.Body, served.Body)
	}
}
