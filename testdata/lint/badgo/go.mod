module badfixture

go 1.22
