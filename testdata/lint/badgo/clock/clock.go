// Package clock is a deliberately-bad fixture: a "deterministic" package
// that reads the wall clock. scripts/lint_fixtures.sh proves nepvet fails
// red on it with exactly the golden diagnostic.
package clock

import "time"

// Stamp leaks host time into supposedly deterministic state.
func Stamp() int64 { return time.Now().UnixNano() }
