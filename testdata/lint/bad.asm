; Deliberately-bad fixture: branches to a label that does not exist.
start:
	imm r1, 0
	br missing
