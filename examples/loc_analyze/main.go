// LOC assertion workflow on its own: write formulas as text, compile them
// into checkers and distribution analyzers, stream a simulation trace
// through them, and also generate a standalone Go checker program — without
// touching the simulator's internals, which is the paper's methodological
// point: no hand-written reference models or trace-scanning scripts.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nepdvs/internal/core"
	"nepdvs/internal/loc"
	"nepdvs/internal/trace"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

const formulas = `
# Sanity checkers over the packet path.
monotone_time:  time(forward[i+1]) - time(forward[i]) >= 0;
pkt_counter:    total_pkt(forward[i]) == i + 1;

# The paper's formula (1): forwarding-time distribution per 100 packets,
# binned in microseconds.
fwd_gap: time(forward[i+100]) - time(forward[i]) hist [100, 1000, 50];

# The paper's formula (2): per-100-packet power as a cumulative (<=)
# distribution in watts.
power: (energy(forward[i+100]) - energy(forward[i])) /
       (time(forward[i+100]) - time(forward[i])) cdf [0.5, 2.25, 0.05];
`

func main() {
	// 1. Produce a trace by simulation (any text/binary trace works).
	cfg, err := core.DefaultRunConfig(workload.IPFwdr, traffic.LevelHigh, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Cycles = 2_000_000
	var col trace.Collector
	cfg.ExtraSink = &col
	if _, err := core.Run(cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated trace: %d events\n\n", len(col.Events))

	// 2. Parse, compile and run the formulas against the trace stream.
	results, err := loc.RunFormulas(formulas, col.Source(), core.TraceSchema())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Print(r.Summary())
		fmt.Println()
	}

	// 3. Generate a standalone checker program for one formula — the
	// artifact the paper's methodology produces for any simulator.
	f := loc.MustParse("time(forward[i+1]) - time(forward[i]) >= 0")
	f.Name = "monotone_time"
	src, err := loc.GenerateGo(f, core.TraceSchema())
	if err != nil {
		log.Fatal(err)
	}
	out := filepath.Join(os.TempDir(), "monotone_time_checker.go")
	if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated standalone checker: %s (%d bytes, stdlib-only)\n", out, len(src))
	fmt.Println("build it with:  go build " + out)
}
