// TDVS design-space exploration: sweep threshold × window for a chosen
// benchmark, extract the 80th-percentile power and throughput from the LOC
// distribution analyzers, and print the two surfaces of the paper's
// Figures 8 and 9 — then name the power-optimal and performance-optimal
// configurations the way §4.1 concludes.
package main

import (
	"flag"
	"fmt"
	"log"

	"nepdvs/internal/core"
	"nepdvs/internal/stats"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

func main() {
	bench := flag.String("bench", "ipfwdr", "benchmark to explore")
	cycles := flag.Int64("cycles", 2_000_000, "reference cycles per run")
	flag.Parse()

	base, err := core.DefaultRunConfig(workload.Name(*bench), traffic.LevelHigh, 1)
	if err != nil {
		log.Fatal(err)
	}
	base.Cycles = *cycles
	base.Formulas = core.StandardFormulas()

	thresholds := []float64{800, 1000, 1200, 1400}
	windows := []int64{20000, 40000, 60000, 80000}
	results, err := core.SweepTDVS(base, thresholds, windows, 8)
	if err != nil {
		log.Fatal(err)
	}

	power := stats.NewSurface("threshold_mbps", "window_cycles", "power_w_p80")
	tput := stats.NewSurface("threshold_mbps", "window_cycles", "throughput_mbps_p80")
	for _, r := range results {
		p, _ := r.Result.LOCByName("power")
		t, _ := r.Result.LOCByName("throughput")
		power.Set(r.Point.ThresholdMbps, float64(r.Point.WindowCycles), p.Dist.Hist.QuantileUpper(0.8))
		tput.Set(r.Point.ThresholdMbps, float64(r.Point.WindowCycles), t.Dist.Hist.QuantileLower(0.8))
	}

	fmt.Println("# Figure 8: 80th-percentile power surface")
	fmt.Print(power.Render())
	fmt.Println("# Figure 9: 80th-percentile throughput surface")
	fmt.Print(tput.Render())

	px, py, pz := power.MinZ()
	tx, ty, tz := tput.MaxZ()
	fmt.Printf("power-optimal config:       threshold %g Mbps, window %gk cycles (%.3f W at p80)\n", px, py/1000, pz)
	fmt.Printf("performance-optimal config: threshold %g Mbps, window %gk cycles (%.0f Mbps at p80)\n", tx, ty/1000, tz)
}
