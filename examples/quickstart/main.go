// Quickstart: simulate the IXP1200-class NPU running IP forwarding under
// high traffic, once without DVS and once with traffic-based DVS, and use
// an automatically generated LOC distribution analyzer to compare the
// per-100-packet power distributions — the paper's core workflow in ~60
// lines.
package main

import (
	"fmt"
	"log"

	"nepdvs/internal/core"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

func main() {
	// The paper's setup: ipfwdr, a few milliseconds of high-rate edge
	// router traffic, and the formula (2) power analyzer.
	base, err := core.DefaultRunConfig(workload.IPFwdr, traffic.LevelHigh, 1)
	if err != nil {
		log.Fatal(err)
	}
	base.Cycles = 4_000_000 // ~6.7 ms at 600 MHz; the paper uses 8e6
	base.Formulas = core.PowerFormula(100, 0.5, 2.25, 0.05)

	noDVS, err := core.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	tdvs := base
	tdvs.Policy = core.TDVSPolicy(1000, 40000) // paper Figure 5 ladder
	withDVS, err := core.Run(tdvs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== noDVS ===")
	report(noDVS)
	fmt.Println("=== TDVS (threshold 1000 Mbps, window 40k cycles) ===")
	report(withDVS)

	saving := 1 - withDVS.Stats.AvgPowerW/noDVS.Stats.AvgPowerW
	fmt.Printf("TDVS power saving: %.1f%% at %.2f%% packet loss\n",
		saving*100, withDVS.Stats.LossFrac()*100)
}

func report(r *core.RunResult) {
	fmt.Printf("forwarded %.0f Mbps, average power %.3f W, loss %.4f\n",
		r.Stats.SentMbps(), r.Stats.AvgPowerW, r.Stats.LossFrac())
	if p, ok := r.LOCByName("power"); ok {
		fmt.Printf("80%% of per-100-packet power readings are below %.2f W\n",
			p.Dist.Hist.QuantileUpper(0.8))
		fmt.Print(p.Dist.Render())
	}
	fmt.Println()
}
