// EDVS and the idle-time story: reproduce the paper's §4.2 analysis that
// motivates execution-based DVS. The example runs ipfwdr under low and high
// traffic, attaches LOC histogram analyzers to the per-ME idle events, and
// shows (a) that microengines poll rather than idle under low load, (b) the
// bimodal idle distribution of the receiving engines under high load, and
// (c) that EDVS converts that idle time into power savings without
// throughput loss while the transmitting engines never scale down.
package main

import (
	"fmt"
	"log"
	"strings"

	"nepdvs/internal/core"
	"nepdvs/internal/sim"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

func main() {
	for _, level := range []traffic.Level{traffic.LevelLow, traffic.LevelHigh} {
		cfg, err := core.DefaultRunConfig(workload.IPFwdr, level, 1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Cycles = 4_000_000
		cfg.Chip.IdleSampleWindow = sim.NewClock(cfg.Chip.RefMHz).Cycles(40000)
		cfg.Formulas = strings.Join([]string{
			core.IdleFormula(0), // a receiving ME
			core.IdleFormula(5), // a transmitting ME
		}, "\n")
		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s traffic (%.0f Mbps offered) ===\n", level, res.Stats.OfferedMbps())
		for _, name := range []string{"idle_m0", "idle_m5"} {
			lr, ok := res.LOCByName(name)
			if !ok {
				log.Fatalf("missing %s", name)
			}
			fmt.Printf("%s idle-fraction histogram (40k-cycle windows):\n%s\n", name, lr.Dist.Render())
		}
	}

	// Now let EDVS exploit the idle time.
	base, err := core.DefaultRunConfig(workload.IPFwdr, traffic.LevelHigh, 1)
	if err != nil {
		log.Fatal(err)
	}
	base.Cycles = 4_000_000
	noDVS, err := core.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	edvs := base
	edvs.Policy = core.EDVSPolicy(40000, 0.10)
	withDVS, err := core.Run(edvs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== EDVS (idle threshold 10%, window 40k) vs noDVS, high traffic ===")
	fmt.Printf("power:      %.3f W -> %.3f W (%.1f%% saving)\n",
		noDVS.Stats.AvgPowerW, withDVS.Stats.AvgPowerW,
		(1-withDVS.Stats.AvgPowerW/noDVS.Stats.AvgPowerW)*100)
	fmt.Printf("throughput: %.0f Mbps -> %.0f Mbps\n",
		noDVS.Stats.SentMbps(), withDVS.Stats.SentMbps())
	fmt.Printf("dvs transitions: %d\n", withDVS.DVSStats.Transitions)
	for i, stall := range withDVS.Stats.MEStallFrac {
		role := "rx"
		if i >= base.Chip.RxMEs {
			role = "tx"
		}
		fmt.Printf("ME%d (%s): stall fraction %.4f\n", i, role, stall)
	}
}
