// Command locheck evaluates LOC assertion formulas against a simulation
// trace: checkers report violations, distribution formulas print their
// hist/cdf/ccdf tables. Traces may be text or binary (auto-detected) and
// are streamed in O(window) memory.
//
// Examples:
//
//	locheck -e 'cycle(deq[i]) - cycle(enq[i]) <= 50' run.trc
//	locheck -f formulas.loc run.trc
//	nepsim -trace /dev/stdout | locheck -f formulas.loc
//
// Exit status: 0 when all checkers pass, 1 on assertion failure, 2 on
// usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/loc"
	"nepdvs/internal/trace"
)

func main() {
	var (
		expr     = flag.String("e", "", "formula source text")
		file     = flag.String("f", "", "formula file")
		noSchema = flag.Bool("no-schema", false, "skip annotation-name checking against the standard trace schema")
	)
	flag.Parse()
	code, err := run(*expr, *file, *noSchema, flag.Args())
	if err != nil {
		cli.DieUsage("locheck", err)
	}
	os.Exit(code)
}

func run(expr, file string, noSchema bool, args []string) (int, error) {
	src := expr
	if file != "" {
		if src != "" {
			return 0, fmt.Errorf("use -e or -f, not both")
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return 0, err
		}
		src = string(b)
	}
	if src == "" {
		return 0, fmt.Errorf("no formulas given (use -e or -f)")
	}
	in := os.Stdin
	if len(args) > 1 {
		return 0, fmt.Errorf("at most one trace file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
	}
	source, err := trace.OpenSource(in)
	if err != nil {
		return 0, err
	}
	schema := core.TraceSchema()
	if noSchema {
		schema = nil
	}
	results, err := loc.RunFormulas(src, source, schema)
	if err != nil {
		return 0, err
	}
	failed := false
	for _, r := range results {
		fmt.Print(r.Summary())
		if r.Check != nil && !r.Check.Passed() {
			failed = true
		}
	}
	if failed {
		return 1, nil
	}
	return 0, nil
}
