// Command locheck evaluates LOC assertion formulas against a simulation
// trace: checkers report violations, distribution formulas print their
// hist/cdf/ccdf tables. Traces may be text or binary (auto-detected) and
// are streamed in O(window) memory. With -lint the formulas are statically
// analyzed and no trace is read at all.
//
// Examples:
//
//	locheck -e 'cycle(deq[i]) - cycle(enq[i]) <= 50' run.trc
//	locheck -f formulas.loc run.trc
//	locheck -f formulas.loc -report report.json run.trc
//	locheck -lint -f formulas.loc
//	nepsim -trace /dev/stdout | locheck -f formulas.loc
//
// With -report PATH the unified assertion report (loc.Report JSON: verdicts,
// violation witnesses, worst offender, violation density) is additionally
// written to PATH; the exit status is unchanged by the flag itself.
//
// Exit status:
//
//	0  all checkers pass (or -lint finds nothing); with -report, the
//	   report was written
//	1  assertion failure (the report, if requested, is still written)
//	2  usage or parse errors
//	3  lint findings
//	4  I/O errors (unreadable formulas or trace, unwritable -report path)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/loc"
	"nepdvs/internal/trace"
)

func main() {
	var (
		expr     = flag.String("e", "", "formula source text")
		file     = flag.String("f", "", "formula file")
		noSchema = flag.Bool("no-schema", false, "skip annotation-name checking against the standard trace schema")
		lintOnly = flag.Bool("lint", false, "statically lint the formulas and exit without reading a trace")
		report   = flag.String("report", "", "write the assertion report JSON to this file")
	)
	flag.Parse()
	code, err := run(*expr, *file, *noSchema, *lintOnly, *report, flag.Args())
	if err != nil {
		// I/O failures (unreadable formula file or trace) exit 4; everything
		// else reaching here is a usage or parse problem and exits 2.
		var pe *fs.PathError
		if errors.As(err, &pe) {
			cli.DieIO("locheck", err)
		}
		cli.DieUsage("locheck", err)
	}
	os.Exit(code)
}

func run(expr, file string, noSchema, lintOnly bool, report string, args []string) (int, error) {
	src := expr
	if file != "" {
		if src != "" {
			return 0, fmt.Errorf("use -e or -f, not both")
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return 0, err
		}
		src = string(b)
	}
	if src == "" {
		return 0, fmt.Errorf("no formulas given (use -e or -f)")
	}
	schema := core.TraceSchema()
	if noSchema {
		schema = nil
	}
	if lintOnly {
		if report != "" {
			return 0, fmt.Errorf("-lint evaluates no trace; -report has nothing to write")
		}
		return lint(src, schema, args)
	}
	in := os.Stdin
	if len(args) > 1 {
		return 0, fmt.Errorf("at most one trace file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
	}
	source, err := trace.OpenSource(in)
	if err != nil {
		return 0, err
	}
	results, err := loc.RunFormulas(src, source, schema)
	if err != nil {
		return 0, err
	}
	failed := false
	for _, r := range results {
		fmt.Print(r.Summary())
		if r.Check != nil && !r.Check.Passed() {
			failed = true
		}
	}
	if report != "" {
		b, err := loc.BuildReport(results).JSON()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(report, b, 0o644); err != nil {
			// os.WriteFile returns *fs.PathError, so main exits 4 (I/O).
			return 0, err
		}
	}
	if failed {
		return cli.ExitRuntime, nil
	}
	return 0, nil
}

// lint statically analyzes the formulas: parse errors exit 2 like every
// other malformed invocation, findings exit 3, a clean bill exits 0.
func lint(src string, schema map[string]bool, args []string) (int, error) {
	if len(args) > 0 {
		return 0, fmt.Errorf("-lint reads no trace; drop the %q argument", args[0])
	}
	diags, parsed := loc.LintFile(src, schema)
	for _, d := range diags {
		fmt.Println(d)
	}
	if !parsed {
		return cli.ExitUsage, nil
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "locheck: %d lint finding(s)\n", len(diags))
		return cli.ExitLint, nil
	}
	return 0, nil
}
