// Command locheck evaluates LOC assertion formulas against a simulation
// trace: checkers report violations, distribution formulas print their
// hist/cdf/ccdf tables. Traces may be text or binary (auto-detected) and
// are streamed in O(window) memory. With -lint the formulas are statically
// linted (structure only) and no trace is read; with -analyze they get the
// full semantic analysis — interval-derived relation verdicts, vacuity
// against the chip's event vocabulary, tautology/contradiction/subsumption
// across the file — still without reading a trace.
//
// Examples:
//
//	locheck -e 'cycle(deq[i]) - cycle(enq[i]) <= 50' run.trc
//	locheck -f formulas.loc run.trc
//	locheck -f formulas.loc -report report.json run.trc
//	locheck -lint -f formulas.loc
//	locheck -analyze -f formulas.loc
//	nepsim -trace /dev/stdout | locheck -f formulas.loc
//
// With -report PATH the unified assertion report (loc.Report JSON: verdicts,
// violation witnesses, worst offender, violation density) is additionally
// written to PATH; the exit status is unchanged by the flag itself.
//
// Exit status:
//
//	0  all checkers pass (or -lint/-analyze find nothing); with -report,
//	   the report was written
//	1  assertion failure (the report, if requested, is still written)
//	2  usage or parse errors
//	3  lint or analysis findings
//	4  I/O errors (unreadable formulas or trace, unwritable -report path)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/loc"
	"nepdvs/internal/trace"
)

func main() {
	var (
		expr     = flag.String("e", "", "formula source text")
		file     = flag.String("f", "", "formula file")
		noSchema = flag.Bool("no-schema", false, "skip annotation-name checking against the standard trace schema")
		lintOnly = flag.Bool("lint", false, "statically lint the formulas and exit without reading a trace")
		analyze  = flag.Bool("analyze", false, "run the full semantic static analysis (verdicts, vacuity, cross-formula) and exit without reading a trace")
		report   = flag.String("report", "", "write the assertion report JSON to this file")
	)
	flag.Parse()
	code, err := run(*expr, *file, *noSchema, *lintOnly, *analyze, *report, flag.Args())
	if err != nil {
		// I/O failures (unreadable formula file or trace) exit 4; everything
		// else reaching here is a usage or parse problem and exits 2.
		var pe *fs.PathError
		if errors.As(err, &pe) {
			cli.DieIO("locheck", err)
		}
		cli.DieUsage("locheck", err)
	}
	os.Exit(code)
}

func run(expr, file string, noSchema, lintOnly, analyze bool, report string, args []string) (int, error) {
	src := expr
	if file != "" {
		if src != "" {
			return 0, fmt.Errorf("use -e or -f, not both")
		}
		b, err := os.ReadFile(file)
		if err != nil {
			return 0, err
		}
		src = string(b)
	}
	if src == "" {
		return 0, fmt.Errorf("no formulas given (use -e or -f)")
	}
	schema := core.TraceSchema()
	if noSchema {
		schema = nil
	}
	if lintOnly && analyze {
		return 0, fmt.Errorf("use -lint or -analyze, not both")
	}
	if lintOnly || analyze {
		mode := "-lint"
		if analyze {
			mode = "-analyze"
		}
		if report != "" {
			return 0, fmt.Errorf("%s evaluates no trace; -report has nothing to write", mode)
		}
		if len(args) > 0 {
			return 0, fmt.Errorf("%s reads no trace; drop the %q argument", mode, args[0])
		}
		if analyze {
			// The semantic pass gets the full schema — annotation value
			// ranges plus the default chip's event vocabulary — unless
			// -no-schema asks for pure structure checking.
			sch := core.EventSchema()
			if noSchema {
				sch = nil
			}
			return diagnose(loc.AnalyzeFile(src, sch))
		}
		return diagnose(loc.LintFile(src, schema))
	}
	in := os.Stdin
	if len(args) > 1 {
		return 0, fmt.Errorf("at most one trace file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
	}
	source, err := trace.OpenSource(in)
	if err != nil {
		return 0, err
	}
	results, err := loc.RunFormulas(src, source, schema)
	if err != nil {
		return 0, err
	}
	failed := false
	for _, r := range results {
		fmt.Print(r.Summary())
		if r.Check != nil && !r.Check.Passed() {
			failed = true
		}
	}
	if report != "" {
		b, err := loc.BuildReport(results).JSON()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(report, b, 0o644); err != nil {
			// os.WriteFile returns *fs.PathError, so main exits 4 (I/O).
			return 0, err
		}
	}
	if failed {
		return cli.ExitRuntime, nil
	}
	return 0, nil
}

// diagnose renders a static-analysis outcome: parse errors exit 2 like
// every other malformed invocation, findings exit 3, a clean bill exits 0.
func diagnose(diags []loc.LintDiag, parsed bool) (int, error) {
	for _, d := range diags {
		fmt.Println(d)
	}
	if !parsed {
		return cli.ExitUsage, nil
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "locheck: %d finding(s)\n", len(diags))
		return cli.ExitLint, nil
	}
	return 0, nil
}
