// Command dvsexplore regenerates the paper's tables and figures (and the
// ablations beyond it). With no arguments it runs everything; otherwise the
// arguments name experiments (see -list).
//
// Examples:
//
//	dvsexplore -list
//	dvsexplore fig6 fig7
//	dvsexplore -cycles 2000000 -outdir results all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"nepdvs/internal/experiments"
)

func main() {
	var (
		cycles = flag.Int64("cycles", 8_000_000, "reference cycles per simulation run")
		par    = flag.Int("par", 8, "parallel simulations")
		seed   = flag.Int64("seed", 1, "traffic seed")
		outdir = flag.String("outdir", "", "write each report to <outdir>/<id>.dat instead of stdout")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := run(*cycles, *par, *seed, *outdir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dvsexplore:", err)
		os.Exit(1)
	}
}

func run(cycles int64, par int, seed int64, outdir string, args []string) error {
	o := experiments.Options{Cycles: cycles, Parallelism: par, Seed: seed}
	var reports []experiments.Report
	start := time.Now()
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		rs, err := experiments.RunAll(o)
		if err != nil {
			return err
		}
		reports = rs
	} else {
		for _, id := range args {
			rs, err := experiments.Run(id, o)
			if err != nil {
				return err
			}
			reports = append(reports, rs...)
		}
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		for _, r := range reports {
			path := filepath.Join(outdir, r.ID+".dat")
			content := fmt.Sprintf("# %s\n%s", r.Title, r.Body)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%s)\n", path, r.Title)
			for _, ch := range r.Charts {
				svgPath := filepath.Join(outdir, ch.Name+".svg")
				if err := os.WriteFile(svgPath, []byte(ch.SVG), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", svgPath)
			}
		}
	} else {
		for _, r := range reports {
			fmt.Println(r)
		}
	}
	fmt.Fprintf(os.Stderr, "dvsexplore: %d reports in %v\n", len(reports), time.Since(start).Round(time.Millisecond))
	return nil
}
