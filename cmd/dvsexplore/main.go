// Command dvsexplore regenerates the paper's tables and figures (and the
// ablations beyond it). With no arguments it runs everything; otherwise the
// arguments name experiments (see -list).
//
// While running it shows a live progress line on stderr (suppressed when
// stderr is not a terminal, or with -quiet) with runs completed and an ETA
// estimated from finished runs. With -metrics it writes aggregate run
// metrics (metrics.json and metrics.prom) into the given directory, and
// whenever results are written a manifest.json lands next to them.
//
// Examples:
//
//	dvsexplore -list
//	dvsexplore fig6 fig7
//	dvsexplore -cycles 2000000 -outdir results -metrics results all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"nepdvs/internal/cli"
	"nepdvs/internal/experiments"
	"nepdvs/internal/obs"
)

func main() {
	var (
		cycles     = flag.Int64("cycles", 8_000_000, "reference cycles per simulation run")
		par        = flag.Int("par", 8, "parallel simulations")
		seed       = flag.Int64("seed", 1, "traffic seed")
		outdir     = flag.String("outdir", "", "write each report to <outdir>/<id>.dat instead of stdout")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		metricsDir = flag.String("metrics", "", "write metrics.json and metrics.prom into this directory")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := run(*cycles, *par, *seed, *outdir, *metricsDir, *quiet,
		*cpuprofile, *memprofile, flag.Args()); err != nil {
		cli.Die("dvsexplore", err)
	}
}

func run(cycles int64, par int, seed int64, outdir, metricsDir string, quiet bool,
	cpuprofile, memprofile string, args []string) error {

	start := time.Now()
	prof, err := obs.StartProfiles(cpuprofile, memprofile)
	if err != nil {
		return err
	}
	defer prof.Stop()

	o := experiments.Options{Cycles: cycles, Parallelism: par, Seed: seed}
	reg := obs.NewRegistry()
	prog := obs.NewProgress(os.Stderr, "runs", experiments.PlannedRuns(args),
		obs.StderrIsTerminal() && !quiet)
	remove := experiments.ObserveRuns(reg, func(wall time.Duration, failed bool) {
		prog.RunDone(failed)
	})
	defer remove()

	var reports []experiments.Report
	runAll := len(args) == 0 || (len(args) == 1 && args[0] == "all")
	if runAll {
		rs, err := experiments.RunAll(o)
		if err != nil {
			prog.Finish()
			return err
		}
		reports = rs
	} else {
		for _, id := range args {
			rs, err := experiments.Run(id, o)
			if err != nil {
				prog.Finish()
				return err
			}
			reports = append(reports, rs...)
		}
	}
	prog.Finish()

	var outputs []string
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		for _, r := range reports {
			path := filepath.Join(outdir, r.ID+".dat")
			content := fmt.Sprintf("# %s\n%s", r.Title, r.Body)
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			outputs = append(outputs, path)
			fmt.Printf("wrote %s (%s)\n", path, r.Title)
			for _, ch := range r.Charts {
				svgPath := filepath.Join(outdir, ch.Name+".svg")
				if err := os.WriteFile(svgPath, []byte(ch.SVG), 0o644); err != nil {
					return err
				}
				outputs = append(outputs, svgPath)
				fmt.Printf("wrote %s\n", svgPath)
			}
		}
	} else {
		for _, r := range reports {
			fmt.Println(r)
		}
	}

	snap := reg.Snapshot()
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			return err
		}
		jsonPath := filepath.Join(metricsDir, "metrics.json")
		if err := snap.WriteJSONFile(jsonPath); err != nil {
			return err
		}
		outputs = append(outputs, jsonPath)
		promPath := filepath.Join(metricsDir, "metrics.prom")
		f, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := snap.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		outputs = append(outputs, promPath)
	}

	// A manifest accompanies any invocation that wrote results: into the
	// report directory when there is one, else the metrics directory.
	manifestDir := outdir
	if manifestDir == "" {
		manifestDir = metricsDir
	}
	if manifestDir != "" {
		ids := args
		if runAll {
			ids = []string{"all"}
		}
		m := obs.NewManifest("dvsexplore", os.Args[1:])
		m.Config = struct {
			Options     experiments.Options `json:"options"`
			Experiments []string            `json:"experiments"`
		}{o, ids}
		m.Seed = seed
		m.Cycles = cycles
		m.Outputs = outputs
		m.Metrics = &snap
		m.SetWall(time.Since(start))
		if err := m.WriteFile(filepath.Join(manifestDir, "manifest.json")); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "dvsexplore: %d reports in %v\n", len(reports), time.Since(start).Round(time.Millisecond))
	return prof.Stop()
}
