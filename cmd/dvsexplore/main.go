// Command dvsexplore regenerates the paper's tables and figures (and the
// ablations beyond it). With no arguments it runs everything; otherwise the
// arguments name experiments (see -list).
//
// While running it shows a live progress line on stderr (suppressed when
// stderr is not a terminal, or with -quiet) with runs completed and an ETA
// estimated from finished runs. With -metrics it writes aggregate run
// metrics (metrics.json and metrics.prom) into the given directory, and
// whenever results are written a manifest.json lands next to them.
//
// The exploration is resilient: a failing experiment is recorded (in the
// manifest's failures list and the exit status) while the others complete,
// -run-timeout bounds each simulation run with a wall-clock watchdog, and
// -checkpoint makes the whole exploration restartable — finished
// experiments are recorded in the checkpoint directory and a rerun resumes
// them instead of re-simulating. All result files are written atomically,
// so a killed run never leaves truncated artifacts. With -cache, completed
// runs land in a content-addressed result cache shared with nepsim and dvsd:
// a rerun (or an overlapping exploration) serves identical runs from disk
// instead of simulating, and the manifest records the hit/miss counts.
//
// Examples:
//
//	dvsexplore -list
//	dvsexplore -list-policies
//	dvsexplore fig6 fig7 policy_compare
//	dvsexplore -cycles 2000000 -outdir results -metrics results all
//	dvsexplore -checkpoint results/ck -run-timeout 10m -outdir results all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nepdvs/internal/cache"
	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/experiments"
	"nepdvs/internal/obs"
	"nepdvs/internal/policy"
)

func main() {
	var (
		cycles     = flag.Int64("cycles", 8_000_000, "reference cycles per simulation run")
		par        = flag.Int("par", 8, "parallel simulations")
		seed       = flag.Int64("seed", 1, "traffic seed")
		outdir     = flag.String("outdir", "", "write each report to <outdir>/<id>.dat instead of stdout")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		listPol    = flag.Bool("list-policies", false, "list registered DVS/DPM policies with their parameters and exit")
		metricsDir = flag.String("metrics", "", "write metrics.json and metrics.prom into this directory")
		quiet      = flag.Bool("quiet", false, "suppress the live progress line")
		runTimeout = flag.Duration("run-timeout", 0, "wall-clock watchdog per simulation run (0 = unbounded)")
		checkpoint = flag.String("checkpoint", "", "checkpoint directory: record finished experiments and resume a killed exploration")
		cacheDir   = flag.String("cache", "", "content-addressed run cache directory (shared with nepsim and dvsd)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *listPol {
		fmt.Print(policy.DescribeAll())
		return
	}
	if err := run(*cycles, *par, *seed, *outdir, *metricsDir, *quiet,
		*runTimeout, *checkpoint, *cacheDir, *cpuprofile, *memprofile, flag.Args()); err != nil {
		cli.Die("dvsexplore", err)
	}
}

func run(cycles int64, par int, seed int64, outdir, metricsDir string, quiet bool,
	runTimeout time.Duration, checkpoint, cacheDir, cpuprofile, memprofile string, args []string) error {

	start := time.Now()
	prof, err := obs.StartProfiles(cpuprofile, memprofile)
	if err != nil {
		return err
	}
	defer prof.Stop()

	var ck *core.Checkpoint
	if checkpoint != "" {
		ck, err = core.OpenCheckpoint(checkpoint)
		if err != nil {
			return err
		}
	}

	o := experiments.Options{Cycles: cycles, Parallelism: par, Seed: seed, RunTimeout: runTimeout}
	reg := obs.NewRegistry()

	var store *cache.Store
	if cacheDir != "" {
		store, err = cache.Open(cacheDir, cache.Options{Registry: reg})
		if err != nil {
			return err
		}
		core.SetRunCache(store)
		defer core.SetRunCache(nil)
	}
	prog := obs.NewProgress(os.Stderr, "runs", experiments.PlannedRuns(args),
		obs.StderrIsTerminal() && !quiet)
	remove := experiments.ObserveRuns(reg, func(wall time.Duration, failed bool) {
		prog.RunDone(failed)
	})
	defer remove()

	// The exploration is resilient: one failing experiment is recorded and
	// the rest still run, land on disk and are accounted for in the
	// manifest. A non-nil return at the end turns the failures into a
	// non-zero exit.
	var reports []experiments.Report
	var failures []string
	runAll := len(args) == 0 || (len(args) == 1 && args[0] == "all")
	if runAll {
		rs, err := experiments.RunAllCheckpointed(o, ck)
		if err != nil {
			failures = append(failures, err.Error())
		}
		reports = rs
	} else {
		for _, id := range args {
			rs, resumed, err := experiments.RunCheckpointed(id, o, ck)
			if err != nil {
				failures = append(failures, fmt.Sprintf("%s: %v", id, err))
				fmt.Fprintf(os.Stderr, "dvsexplore: %s failed: %v\n", id, err)
				continue
			}
			if resumed {
				fmt.Fprintf(os.Stderr, "dvsexplore: %s resumed from checkpoint\n", id)
			}
			reports = append(reports, rs...)
		}
	}
	prog.Finish()

	var outputs []string
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
		for _, r := range reports {
			path := filepath.Join(outdir, r.ID+".dat")
			content := fmt.Sprintf("# %s\n%s", r.Title, r.Body)
			if err := obs.AtomicWriteFile(path, []byte(content), 0o644); err != nil {
				return err
			}
			outputs = append(outputs, path)
			fmt.Printf("wrote %s (%s)\n", path, r.Title)
			for _, ch := range r.Charts {
				svgPath := filepath.Join(outdir, ch.Name+".svg")
				if err := obs.AtomicWriteFile(svgPath, []byte(ch.SVG), 0o644); err != nil {
					return err
				}
				outputs = append(outputs, svgPath)
				fmt.Printf("wrote %s\n", svgPath)
			}
			if r.Assertions != nil {
				ab, err := r.Assertions.JSON()
				if err != nil {
					return err
				}
				aPath := filepath.Join(outdir, r.ID+".assertions.json")
				if err := obs.AtomicWriteFile(aPath, ab, 0o644); err != nil {
					return err
				}
				outputs = append(outputs, aPath)
				fmt.Printf("wrote %s\n", aPath)
			}
		}
	} else {
		for _, r := range reports {
			fmt.Println(r)
		}
	}

	snap := reg.Snapshot()
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			return err
		}
		jsonPath := filepath.Join(metricsDir, "metrics.json")
		if err := snap.WriteJSONFile(jsonPath); err != nil {
			return err
		}
		outputs = append(outputs, jsonPath)
		promPath := filepath.Join(metricsDir, "metrics.prom")
		if err := snap.WritePrometheusFile(promPath); err != nil {
			return err
		}
		outputs = append(outputs, promPath)
	}

	// A manifest accompanies any invocation that wrote results: into the
	// report directory when there is one, else the metrics directory.
	manifestDir := outdir
	if manifestDir == "" {
		manifestDir = metricsDir
	}
	if manifestDir != "" {
		ids := args
		if runAll {
			ids = []string{"all"}
		}
		m := obs.NewManifest("dvsexplore", os.Args[1:])
		m.Config = struct {
			Options     experiments.Options `json:"options"`
			Experiments []string            `json:"experiments"`
		}{o, ids}
		m.Seed = seed
		m.Cycles = cycles
		m.Outputs = outputs
		m.Failures = failures
		m.Metrics = &snap
		if store != nil {
			m.Cache = store.Summary()
		}
		m.SetWall(time.Since(start))
		if err := m.WriteFile(filepath.Join(manifestDir, "manifest.json")); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "dvsexplore: %d reports in %v\n", len(reports), time.Since(start).Round(time.Millisecond))
	if err := prof.Stop(); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d experiment(s) failed: %s", len(failures), strings.Join(failures, "; "))
	}
	return nil
}
