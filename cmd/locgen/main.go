// Command locgen generates a standalone Go checker/analyzer program from an
// LOC formula — the paper's "automatically generated trace checkers" flow.
// The emitted source depends only on the Go standard library; build it with
// `go build` and point it at a text trace.
//
// locgen runs the full static analysis — structural lints plus the semantic
// pass (relation verdicts, vacuity against the default chip's event
// vocabulary) — before generating anything (the analyze-then-generate flow
// of the paper): findings are printed and the tool exits 3 without writing
// output.
//
// Examples:
//
//	locgen -e 'cycle(deq[i]) - cycle(enq[i]) <= 50' -o checker.go
//	locgen -f formulas.loc -name power -o analyzer.go
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/loc"
)

func main() {
	var (
		expr     = flag.String("e", "", "formula source text")
		file     = flag.String("f", "", "formula file (pick one formula with -name)")
		name     = flag.String("name", "", "formula name to generate when -f holds several")
		out      = flag.String("o", "", "output file (default stdout)")
		noSchema = flag.Bool("no-schema", false, "skip annotation-name checking")
	)
	flag.Parse()
	if err := run(*expr, *file, *name, *out, *noSchema); err != nil {
		var le lintFindings
		var pe *fs.PathError
		switch {
		case errors.As(err, &le):
			cli.DieLint("locgen", err)
		case errors.As(err, &pe):
			cli.DieIO("locgen", err)
		default:
			cli.Die("locgen", err)
		}
	}
}

// lintFindings carries the finding count up to main for exit-code 3.
type lintFindings int

func (n lintFindings) Error() string {
	return fmt.Sprintf("%d static-analysis finding(s); no code generated", int(n))
}

func run(expr, file, name, out string, noSchema bool) error {
	var f *loc.Formula
	switch {
	case expr != "" && file != "":
		return fmt.Errorf("use -e or -f, not both")
	case expr != "":
		var err error
		f, err = loc.Parse(expr)
		if err != nil {
			return err
		}
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		fs, err := loc.ParseFile(string(b))
		if err != nil {
			return err
		}
		if name == "" {
			if len(fs) > 1 {
				return fmt.Errorf("file holds %d formulas; pick one with -name", len(fs))
			}
			f = fs[0]
		} else {
			for _, cand := range fs {
				if cand.Name == name {
					f = cand
					break
				}
			}
			if f == nil {
				return fmt.Errorf("no formula named %q in %s", name, file)
			}
		}
	default:
		return fmt.Errorf("no formula given (use -e or -f)")
	}
	// Full semantic analysis gates generation: there is no point compiling
	// a checker for an assertion that is vacuous against the default chip's
	// vocabulary or whose relation is already decided statically.
	sch := core.EventSchema()
	if noSchema {
		sch = nil
	}
	if diags := loc.AnalyzeFormula(f, sch); len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return lintFindings(len(diags))
	}
	src, err := loc.GenerateGo(f, sch.AnnNames())
	if err != nil {
		return err
	}
	if out == "" {
		_, err := os.Stdout.WriteString(src)
		return err
	}
	return os.WriteFile(out, []byte(src), 0o644)
}
