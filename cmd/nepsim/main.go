// Command nepsim runs one NPU simulation — a benchmark under a traffic load
// with an optional DVS policy — and reports statistics, optionally writing
// the event trace for offline LOC analysis, a metrics snapshot, and a run
// manifest.
//
// Examples:
//
//	nepsim -bench ipfwdr -level high -cycles 8000000 -trace run.trc
//	nepsim -bench nat -mbps 600 -policy tdvs -threshold 1000 -window 40000
//	nepsim -bench md4 -level medium -policy edvs -window 40000 -idle 0.10
//	nepsim -bench ipfwdr -policy pid -p kp=4 -p setpoint_frac=0.15
//	nepsim -list-policies
//	nepsim -bench nat -policy tdvs -metrics m.json
//	nepsim -bench ipfwdr -policy tdvs -faults plan.json -run-timeout 5m
//	nepsim -bench ipfwdr -level high -timeline run.trace.json
//	nepsim -bench ipfwdr -formulas f.loc -assertions report.json
//
// -assertions writes the unified assertion report (loc.Report JSON): per-
// formula verdicts, violation witnesses with full trace provenance, the
// worst offender, and violation density over sim time. With -timeline,
// retained violations also appear as instants and window spans on the
// "assert" track, tiled against ME activity, DVS transitions and fault
// windows.
//
// -timeline records the run's simulation-time spans — per-ME execution and
// idle residency, memory transactions, VF ladder levels and transitions,
// fault windows — as Chrome/Perfetto trace-event JSON; open the file in
// ui.perfetto.dev or chrome://tracing. Identical invocations write
// byte-identical timelines.
//
// Metrics snapshots derive only from simulation state: two identical
// invocations write byte-identical -metrics files. A file ending in .prom
// is written in Prometheus text format instead of JSON. Whenever results
// are written, a manifest (<output>.manifest.json by default) records the
// full configuration, seed, metrics and environment; -manifest overrides
// the path and -manifest off disables it.
//
// With -cache DIR, results are stored in (and served from) a
// content-addressed run cache shared with dvsexplore and dvsd: repeating an
// identical invocation skips the simulation, with the hit recorded in the
// manifest's cache block. Trace-writing runs bypass the cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nepdvs/internal/cache"
	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/fault"
	"nepdvs/internal/loc"
	"nepdvs/internal/obs"
	"nepdvs/internal/policy"
	"nepdvs/internal/span"
	"nepdvs/internal/trace"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

// paramList collects repeatable -p name=value policy parameters.
type paramList map[string]float64

func (p paramList) String() string {
	var parts []string
	for k, v := range p {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (p paramList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("parameter %s: %w", name, err)
	}
	p[name] = v
	return nil
}

// options collects every flag; run receives it whole.
type options struct {
	bench, level   string
	mbps           float64
	cycles, seed   int64
	policy         string
	listPolicies   bool
	params         paramList
	threshold      float64
	window         int64
	idleFrac, hyst float64
	tracePath      string
	timeline       string
	binary         bool
	formulas       string
	assertions     string
	pipeline       bool
	packets        string
	metrics        string
	manifest       string
	faults         string
	runTimeout     time.Duration
	cacheDir       string
	cpuprofile     string
	memprofile     string
	perf           bool
}

func main() {
	var o options
	flag.StringVar(&o.bench, "bench", "ipfwdr", "benchmark: ipfwdr, url, nat or md4")
	flag.StringVar(&o.level, "level", "high", "traffic level: low, medium or high")
	flag.Float64Var(&o.mbps, "mbps", 0, "override offered load in Mbps (0 = use -level)")
	flag.Int64Var(&o.cycles, "cycles", 8_000_000, "run length in 600 MHz reference cycles")
	flag.Int64Var(&o.seed, "seed", 1, "traffic seed")
	flag.StringVar(&o.policy, "policy", "nodvs", "DVS/DPM policy from the registry (see -list-policies), or nodvs")
	flag.BoolVar(&o.listPolicies, "list-policies", false, "list registered policies with their parameters and exit")
	o.params = paramList{}
	flag.Var(o.params, "p", "policy parameter as name=value (repeatable; overrides the legacy flags)")
	flag.Float64Var(&o.threshold, "threshold", 1000, "TDVS top threshold in Mbps")
	flag.Int64Var(&o.window, "window", 40000, "DVS monitor window in reference cycles")
	flag.Float64Var(&o.idleFrac, "idle", 0.10, "EDVS idle threshold fraction")
	flag.Float64Var(&o.hyst, "hysteresis", 0, "TDVS hysteresis band (ablation)")
	flag.StringVar(&o.tracePath, "trace", "", "write the event trace to this file")
	flag.StringVar(&o.timeline, "timeline", "", "write a Chrome/Perfetto trace-event JSON timeline to this file")
	flag.BoolVar(&o.binary, "binary", false, "write the trace in binary format")
	flag.StringVar(&o.formulas, "formulas", "", "LOC formulas to evaluate live (file path)")
	flag.StringVar(&o.assertions, "assertions", "", "write the assertion report JSON (verdicts, witnesses, density) to this file; requires -formulas")
	flag.BoolVar(&o.pipeline, "pipeline", false, "emit per-batch pipeline events (large traces)")
	flag.StringVar(&o.packets, "packets", "", "replay packet arrivals from a trafficgen file instead of generating")
	flag.StringVar(&o.metrics, "metrics", "", "write a metrics snapshot to this file (.prom = Prometheus text, else JSON)")
	flag.StringVar(&o.manifest, "manifest", "", `run manifest path ("" = derive from outputs, "off" = disable)`)
	flag.StringVar(&o.faults, "faults", "", "inject the deterministic fault plan from this JSON file")
	flag.DurationVar(&o.runTimeout, "run-timeout", 0, "wall-clock watchdog for the run (0 = unbounded)")
	flag.StringVar(&o.cacheDir, "cache", "", "content-addressed run cache directory (shared with dvsexplore and dvsd)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file")
	flag.BoolVar(&o.perf, "perf", false, "measure host performance (simulated cycles/sec, events/sec, per-packet allocation) and report it; recorded in the manifest's perf block")
	flag.Parse()
	if err := run(o, os.Args[1:]); err != nil {
		cli.Die("nepsim", err)
	}
}

// resolvePolicy builds the run's PolicyConfig from the registry: -policy
// names a registered factory (or nodvs), the legacy convenience flags fill
// whichever of the factory's declared parameters they map to, and repeatable
// -p name=value entries override both. Unknown names fail here with the
// registry's did-you-mean hint.
func resolvePolicy(o options) (core.PolicyConfig, error) {
	name, err := policy.Canonical(o.policy)
	if err != nil {
		return core.PolicyConfig{}, err
	}
	params := map[string]float64{}
	if fac, _ := policy.Lookup(name); fac != nil {
		legacy := map[string]float64{
			"top_threshold_mbps": o.threshold,
			"window_cycles":      float64(o.window),
			"idle_frac":          o.idleFrac,
			"hysteresis":         o.hyst,
		}
		for _, d := range fac.Params {
			if v, ok := legacy[d.Name]; ok {
				params[d.Name] = v
			}
		}
	}
	for k, v := range o.params {
		params[k] = v
	}
	if len(params) == 0 {
		params = nil
	}
	return core.PolicyConfig{Name: name, Params: params}, nil
}

func run(o options, rawArgs []string) error {
	if o.listPolicies {
		fmt.Print(policy.DescribeAll())
		return nil
	}
	start := time.Now()
	prof, err := obs.StartProfiles(o.cpuprofile, o.memprofile)
	if err != nil {
		return err
	}
	defer prof.Stop()

	lv, err := traffic.ParseLevel(o.level)
	if err != nil {
		return err
	}
	cfg, err := core.DefaultRunConfig(workload.Name(o.bench), lv, o.seed)
	if err != nil {
		return err
	}
	cfg.Cycles = o.cycles
	cfg.Chip.EmitPipeline = o.pipeline
	if o.mbps > 0 {
		cfg.Traffic = traffic.Config{MeanMbps: o.mbps, Seed: o.seed}
	}
	if o.packets != "" {
		f, err := os.Open(o.packets)
		if err != nil {
			return err
		}
		pkts, err := traffic.ReadPackets(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Packets = pkts
		cfg.PacketCount = len(pkts)
	}
	cfg.Policy, err = resolvePolicy(o)
	if err != nil {
		return err
	}
	if o.formulas != "" {
		src, err := os.ReadFile(o.formulas)
		if err != nil {
			return err
		}
		cfg.Formulas = string(src)
		// Gate the run on static analysis against this run's exact trace
		// schema: a vacuous or tautological assertion set would spend the
		// whole simulation producing an empty claim.
		diags, parsed := loc.AnalyzeFile(cfg.Formulas, core.EventSchemaFor(cfg.Chip))
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", o.formulas, d)
		}
		if !parsed {
			cli.DieUsage("nepsim", fmt.Errorf("%s does not parse", o.formulas))
		}
		if len(diags) > 0 {
			cli.DieLint("nepsim", fmt.Errorf("%d static-analysis finding(s) in %s", len(diags), o.formulas))
		}
	}
	if o.assertions != "" && o.formulas == "" {
		return fmt.Errorf("-assertions needs -formulas to evaluate")
	}
	if o.faults != "" {
		plan, err := fault.ReadPlanFile(o.faults)
		if err != nil {
			return err
		}
		cfg.FaultPlan = plan
	}
	cfg.Timeout = o.runTimeout

	// -perf needs the run's event counters even when no -metrics file was
	// asked for; the registry only reaches disk when -metrics is set.
	var reg *obs.Registry
	if o.metrics != "" || o.perf {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}

	// Assertion-evaluation latency is wall-clock derived, so it lives in a
	// separate registry that feeds only the manifest's perf block — never
	// the deterministic -metrics snapshot.
	var wallReg *obs.Registry
	if o.perf && cfg.Formulas != "" {
		wallReg = obs.NewRegistry()
		cfg.WallMetrics = wallReg
	}

	var spans *span.Recorder
	if o.timeline != "" {
		spans = span.NewRecorder()
		cfg.Spans = spans
	}

	// The run cache serves identical invocations from disk. Trace-writing
	// runs (-trace, -timeline) bypass it by design: a hit cannot replay the
	// event or span stream. Cache counters land in the manifest, not the
	// -metrics snapshot — the snapshot must stay a pure function of
	// simulation state.
	var store *cache.Store
	if o.cacheDir != "" {
		cacheReg := obs.NewRegistry()
		store, err = cache.Open(o.cacheDir, cache.Options{Registry: cacheReg})
		if err != nil {
			return err
		}
		core.SetRunCache(store)
		defer core.SetRunCache(nil)
	}

	var closer interface{ Close() error }
	if o.tracePath != "" {
		f, err := os.Create(o.tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if o.binary {
			w := trace.NewBinaryWriter(f)
			cfg.ExtraSink = w
			closer = w
		} else {
			w := trace.NewTextWriter(f)
			cfg.ExtraSink = w
			closer = w
		}
	}

	// Host-performance measurement brackets exactly the simulation call:
	// allocation deltas come from the runtime's cumulative counters, so GC
	// cycles in between do not hide allocations.
	var ms0 runtime.MemStats
	if o.perf {
		runtime.ReadMemStats(&ms0)
	}
	simStart := time.Now()
	res, err := core.Run(cfg)
	simWall := time.Since(simStart)
	if err != nil {
		return err
	}
	var perfSnap *obs.Snapshot
	if o.perf {
		s := perfSnapshot(o.cycles, simWall, ms0, res, reg, wallReg)
		perfSnap = &s
	}
	if closer != nil {
		if err := closer.Close(); err != nil {
			return err
		}
	}

	printStats(o.bench, res)
	if perfSnap != nil {
		printPerf(*perfSnap, simWall)
	}

	var outputs []string
	if o.tracePath != "" {
		outputs = append(outputs, o.tracePath)
	}
	if o.assertions != "" {
		b, err := loc.BuildReport(res.LOC).JSON()
		if err != nil {
			return err
		}
		if err := obs.AtomicWriteFile(o.assertions, b, 0o644); err != nil {
			return err
		}
		outputs = append(outputs, o.assertions)
	}
	if spans != nil {
		if err := span.WriteChromeFile(o.timeline, spans.Events()); err != nil {
			return err
		}
		outputs = append(outputs, o.timeline)
	}
	var snap *obs.Snapshot
	if reg != nil {
		s := reg.Snapshot()
		snap = &s
		if o.metrics != "" {
			if err := writeMetrics(o.metrics, s); err != nil {
				return err
			}
			outputs = append(outputs, o.metrics)
		}
	}

	if path := manifestPath(o, outputs); path != "" {
		m := obs.NewManifest("nepsim", rawArgs)
		m.Config = res.Config
		m.Seed = o.seed
		m.Cycles = o.cycles
		m.Outputs = outputs
		m.Metrics = snap
		m.Perf = perfSnap
		if store != nil {
			m.Cache = store.Summary()
		}
		m.SetWall(time.Since(start))
		if err := m.WriteFile(path); err != nil {
			return err
		}
	}
	return prof.Stop()
}

// perfSnapshot folds the bracketing measurements into host-performance
// gauges: how fast the simulator simulated and what it allocated per
// simulated packet. Everything here is wall-clock derived, so the snapshot
// goes to the manifest's perf block and stdout — never into the
// deterministic -metrics surface.
func perfSnapshot(cycles int64, wall time.Duration, before runtime.MemStats, res *core.RunResult, reg, wallReg *obs.Registry) obs.Snapshot {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	preg := obs.NewRegistry()
	if wallReg != nil {
		// Fold in the wall-clock assertion-evaluation histogram
		// (loc_eval_seconds) so the manifest's perf block carries it.
		if err := preg.MergeSnapshot(wallReg.Snapshot()); err != nil {
			// Merging into an empty registry cannot conflict; a failure here
			// is a bug, but perf reporting must not sink the run.
			fmt.Fprintln(os.Stderr, "nepsim: perf merge:", err)
		}
	}
	secs := wall.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	preg.Gauge("perf_wall_ms").Set(float64(wall) / float64(time.Millisecond))
	preg.Gauge("perf_sim_cycles_per_sec").Set(float64(cycles) / secs)
	if pkts := res.Stats.PktsArrived; pkts > 0 {
		preg.Gauge("perf_sim_packets_per_sec").Set(float64(pkts) / secs)
		preg.Gauge("perf_alloc_bytes_per_packet").Set(float64(after.TotalAlloc-before.TotalAlloc) / float64(pkts))
		preg.Gauge("perf_allocs_per_packet").Set(float64(after.Mallocs-before.Mallocs) / float64(pkts))
	}
	if events := reg.Counter("sim_events_dispatched").Value(); events > 0 {
		preg.Gauge("perf_events_per_sec").Set(float64(events) / secs)
	}
	return preg.Snapshot()
}

// printPerf renders the host-performance block under the run statistics.
func printPerf(s obs.Snapshot, wall time.Duration) {
	g := s.Gauges
	fmt.Printf("host perf      %.2f Mcycles/s, %.2f Mevents/s, wall %v\n",
		g["perf_sim_cycles_per_sec"]/1e6, g["perf_events_per_sec"]/1e6, wall.Round(time.Millisecond))
	if bpp, ok := g["perf_alloc_bytes_per_packet"]; ok {
		fmt.Printf("alloc          %.1f B/packet (%.2f allocs/packet), %.0f pkts/s\n",
			bpp, g["perf_allocs_per_packet"], g["perf_sim_packets_per_sec"])
	}
}

// writeMetrics serializes a snapshot, choosing Prometheus text format for
// .prom paths and JSON otherwise.
func writeMetrics(path string, s obs.Snapshot) error {
	if filepath.Ext(path) == ".prom" {
		return s.WritePrometheusFile(path)
	}
	return s.WriteJSONFile(path)
}

// manifestPath resolves the -manifest flag: "off" disables, an explicit
// path wins, and otherwise a manifest is derived from the first results
// file — no results, no manifest.
func manifestPath(o options, outputs []string) string {
	switch {
	case o.manifest == "off":
		return ""
	case o.manifest != "":
		return o.manifest
	case o.metrics != "":
		return deriveManifest(o.metrics)
	case o.tracePath != "":
		return deriveManifest(o.tracePath)
	case o.timeline != "":
		return deriveManifest(o.timeline)
	case o.assertions != "":
		return deriveManifest(o.assertions)
	}
	return ""
}

// deriveManifest turns results path "m.json" into "m.manifest.json".
func deriveManifest(out string) string {
	return strings.TrimSuffix(out, filepath.Ext(out)) + ".manifest.json"
}

func printStats(bench string, res *core.RunResult) {
	st := res.Stats
	fmt.Printf("benchmark      %s\n", bench)
	fmt.Printf("policy         %s\n", res.Config.Policy)
	fmt.Printf("offered        %.1f Mbps (%d packets)\n", st.OfferedMbps(), st.PktsArrived)
	fmt.Printf("forwarded      %.1f Mbps (%d packets)\n", st.SentMbps(), st.PktsSent)
	fmt.Printf("packet loss    %.4f\n", st.LossFrac())
	fmt.Printf("energy         %.1f uJ over %v\n", st.EnergyUJ, st.Now)
	fmt.Printf("average power  %.3f W\n", st.AvgPowerW)
	for i := range st.MEIdleFrac {
		fmt.Printf("ME%d            idle %.3f  stall %.3f  instr %d\n",
			i, st.MEIdleFrac[i], st.MEStallFrac[i], st.MEInstr[i])
	}
	if res.DVSStats != nil {
		fmt.Printf("dvs            %d windows, %d transitions\n", res.DVSStats.Windows, res.DVSStats.Transitions)
	}
	if f := res.Faults; f != nil {
		fmt.Printf("faults         %d armed, %d mem delays, %d port stalls, %d drops, %d misreads, %d blocked transitions\n",
			f.Armed, f.MemDelayed, f.PortStalled, f.PortDropped, f.SensorMisreads, f.VFBlocked)
	}
	if res.MonitorFraction > 0 {
		fmt.Printf("monitor energy %.4f%% of total\n", res.MonitorFraction*100)
	}
	for _, lr := range res.LOC {
		fmt.Println()
		fmt.Print(lr.Summary())
	}
}
