// Command nepsim runs one NPU simulation — a benchmark under a traffic load
// with an optional DVS policy — and reports statistics, optionally writing
// the event trace for offline LOC analysis.
//
// Examples:
//
//	nepsim -bench ipfwdr -level high -cycles 8000000 -trace run.trc
//	nepsim -bench nat -mbps 600 -policy tdvs -threshold 1000 -window 40000
//	nepsim -bench md4 -level medium -policy edvs -window 40000 -idle 0.10
package main

import (
	"flag"
	"fmt"
	"os"

	"nepdvs/internal/core"
	"nepdvs/internal/trace"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "ipfwdr", "benchmark: ipfwdr, url, nat or md4")
		level     = flag.String("level", "high", "traffic level: low, medium or high")
		mbps      = flag.Float64("mbps", 0, "override offered load in Mbps (0 = use -level)")
		cycles    = flag.Int64("cycles", 8_000_000, "run length in 600 MHz reference cycles")
		seed      = flag.Int64("seed", 1, "traffic seed")
		policy    = flag.String("policy", "nodvs", "DVS policy: nodvs, tdvs, edvs, combined or oracle")
		threshold = flag.Float64("threshold", 1000, "TDVS top threshold in Mbps")
		window    = flag.Int64("window", 40000, "DVS monitor window in reference cycles")
		idleFrac  = flag.Float64("idle", 0.10, "EDVS idle threshold fraction")
		hyst      = flag.Float64("hysteresis", 0, "TDVS hysteresis band (ablation)")
		tracePath = flag.String("trace", "", "write the event trace to this file")
		binary    = flag.Bool("binary", false, "write the trace in binary format")
		formulas  = flag.String("formulas", "", "LOC formulas to evaluate live (file path)")
		pipeline  = flag.Bool("pipeline", false, "emit per-batch pipeline events (large traces)")
		packets   = flag.String("packets", "", "replay packet arrivals from a trafficgen file instead of generating")
	)
	flag.Parse()
	if err := run(*bench, *level, *mbps, *cycles, *seed, *policy, *threshold, *window,
		*idleFrac, *hyst, *tracePath, *binary, *formulas, *pipeline, *packets); err != nil {
		fmt.Fprintln(os.Stderr, "nepsim:", err)
		os.Exit(1)
	}
}

func run(bench, level string, mbps float64, cycles, seed int64, policy string,
	threshold float64, window int64, idleFrac, hyst float64,
	tracePath string, binary bool, formulaPath string, pipeline bool, packetPath string) error {

	lv, err := traffic.ParseLevel(level)
	if err != nil {
		return err
	}
	cfg, err := core.DefaultRunConfig(workload.Name(bench), lv, seed)
	if err != nil {
		return err
	}
	cfg.Cycles = cycles
	cfg.Chip.EmitPipeline = pipeline
	if mbps > 0 {
		cfg.Traffic = traffic.Config{MeanMbps: mbps, Seed: seed}
	}
	if packetPath != "" {
		f, err := os.Open(packetPath)
		if err != nil {
			return err
		}
		pkts, err := traffic.ReadPackets(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Packets = pkts
	}
	switch policy {
	case "nodvs":
		cfg.Policy = core.PolicyConfig{Kind: core.NoDVS}
	case "tdvs":
		cfg.Policy = core.PolicyConfig{Kind: core.TDVS, TopThresholdMbps: threshold, WindowCycles: window, Hysteresis: hyst}
	case "edvs":
		cfg.Policy = core.PolicyConfig{Kind: core.EDVS, WindowCycles: window, IdleFrac: idleFrac}
	case "combined":
		cfg.Policy = core.PolicyConfig{Kind: core.CombinedDVS, TopThresholdMbps: threshold, WindowCycles: window, IdleFrac: idleFrac}
	case "oracle":
		cfg.Policy = core.PolicyConfig{Kind: core.OracleDVS, TopThresholdMbps: threshold, WindowCycles: window}
	default:
		return fmt.Errorf("unknown policy %q (want nodvs, tdvs, edvs, combined or oracle)", policy)
	}
	if formulaPath != "" {
		src, err := os.ReadFile(formulaPath)
		if err != nil {
			return err
		}
		cfg.Formulas = string(src)
	}

	var closer interface{ Close() error }
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if binary {
			w := trace.NewBinaryWriter(f)
			cfg.ExtraSink = w
			closer = w
		} else {
			w := trace.NewTextWriter(f)
			cfg.ExtraSink = w
			closer = w
		}
	}

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	if closer != nil {
		if err := closer.Close(); err != nil {
			return err
		}
	}

	st := res.Stats
	fmt.Printf("benchmark      %s\n", bench)
	fmt.Printf("policy         %s\n", res.Config.Policy.Kind)
	fmt.Printf("offered        %.1f Mbps (%d packets)\n", st.OfferedMbps(), st.PktsArrived)
	fmt.Printf("forwarded      %.1f Mbps (%d packets)\n", st.SentMbps(), st.PktsSent)
	fmt.Printf("packet loss    %.4f\n", st.LossFrac())
	fmt.Printf("energy         %.1f uJ over %v\n", st.EnergyUJ, st.Now)
	fmt.Printf("average power  %.3f W\n", st.AvgPowerW)
	for i := range st.MEIdleFrac {
		fmt.Printf("ME%d            idle %.3f  stall %.3f  instr %d\n",
			i, st.MEIdleFrac[i], st.MEStallFrac[i], st.MEInstr[i])
	}
	if res.DVSStats != nil {
		fmt.Printf("dvs            %d windows, %d transitions\n", res.DVSStats.Windows, res.DVSStats.Transitions)
	}
	if res.MonitorFraction > 0 {
		fmt.Printf("monitor energy %.4f%% of total\n", res.MonitorFraction*100)
	}
	for _, lr := range res.LOC {
		fmt.Println()
		fmt.Print(lr.Summary())
	}
	return nil
}
