// Command dvsd is the exploration service daemon: an HTTP API (see
// internal/server) over a bounded job queue that executes simulation runs
// and TDVS sweeps, with an optional content-addressed run cache shared with
// the offline tools.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight jobs get -drain-timeout to finish (stragglers are
// interrupted and returned to the queue), and with -state the pending queue
// is checkpointed atomically so the next boot resumes it. With -manifest a
// shutdown manifest records the final metrics and cache summary.
//
// With -peers the daemon federates: sweep jobs shard across the named peer
// nodes by rendezvous hashing on each point's content-addressed run key,
// peer run caches are consulted before simulating, and points on nodes
// that die, drain or straggle are stolen by the survivors (see
// internal/federation and DESIGN.md §15). Points assigned to this node
// execute in-process.
//
// Examples:
//
//	dvsd -addr 127.0.0.1:8377 -cache /var/tmp/dvs-cache
//	dvsd -addr 127.0.0.1:0 -addr-file dvsd.addr -state queue.json
//	dvsd -addr 127.0.0.1:7071 -node n1 -peers n2=127.0.0.1:7072,n3=127.0.0.1:7073
//	dvsctl -addr "$(cat dvsd.addr)" health
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nepdvs/internal/cache"
	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/experiments"
	"nepdvs/internal/federation"
	"nepdvs/internal/jobs"
	"nepdvs/internal/obs"
	"nepdvs/internal/server"
)

type options struct {
	addr          string
	addrFile      string
	workers       int
	queueCap      int
	cacheDir      string
	cacheMax      int
	state         string
	drainTimeout  time.Duration
	manifest      string
	logLevel      string
	logFormat     string
	peers         string
	node          string
	probeInterval time.Duration
}

// newLogger builds the daemon's structured logger on stderr. Format "json"
// emits one JSON object per record (for log shippers); "text" is the
// human-readable slog form.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("dvsd: -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("dvsd: -log-format %q (want text or json)", format)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8377", "listen address (host:port, port 0 = pick one)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the actual listen address to this file (for port 0)")
	flag.IntVar(&o.workers, "workers", 0, "job workers (0 = one per CPU)")
	flag.IntVar(&o.queueCap, "queue-cap", 64, "max pending jobs before submissions get 503")
	flag.StringVar(&o.cacheDir, "cache", "", "content-addressed run cache directory (shared with nepsim/dvsexplore -cache)")
	flag.IntVar(&o.cacheMax, "cache-max", 0, "evict oldest cache entries past this count (0 = unbounded)")
	flag.StringVar(&o.state, "state", "", "queue checkpoint file: restored at boot, written at shutdown")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	flag.StringVar(&o.manifest, "manifest", "", "write a shutdown manifest (metrics + cache summary) to this file")
	flag.StringVar(&o.logLevel, "log-level", "info", "log verbosity: debug, info, warn or error")
	flag.StringVar(&o.logFormat, "log-format", "text", "log format: text or json")
	flag.StringVar(&o.peers, "peers", "", "comma-separated peer nodes (name=url or url): federate sweep jobs across them")
	flag.StringVar(&o.node, "node", "local", "this node's member name in the federation")
	flag.DurationVar(&o.probeInterval, "probe-interval", 2*time.Second, "with -peers: how often to probe peer health")
	flag.Parse()
	if err := run(o, os.Args[1:]); err != nil {
		cli.Die("dvsd", err)
	}
}

func run(o options, rawArgs []string) error {
	start := time.Now()
	log, err := newLogger(o.logLevel, o.logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	remove := experiments.ObserveRuns(reg, nil)
	defer remove()

	var store *cache.Store
	if o.cacheDir != "" {
		var err error
		store, err = cache.Open(o.cacheDir, cache.Options{Registry: reg, MaxEntries: o.cacheMax, Logger: log})
		if err != nil {
			return err
		}
		core.SetRunCache(store)
		defer core.SetRunCache(nil)
	}

	// With -peers this daemon coordinates: sweep jobs shard across the
	// cluster by rendezvous hashing, with this process as the local member.
	// Points assigned to self execute in-process, never over loopback HTTP.
	var pool *federation.Pool
	if o.peers != "" {
		peers, err := federation.ParseMembers(o.peers)
		if err != nil {
			return err
		}
		members := append([]federation.Member{{Name: o.node}}, peers...)
		pool, err = federation.New(federation.Options{Members: members, Registry: reg, Logger: log})
		if err != nil {
			return err
		}
		log.Info("federation enabled", "node", o.node, "peers", len(peers))
	}

	// RunMetrics folds per-run simulation counters — including the
	// per-formula loc_* assertion metrics and the loc_eval_seconds latency
	// histogram — into this daemon's /metrics registry.
	qopts := jobs.Options{Workers: o.workers, Capacity: o.queueCap, Registry: reg, RunMetrics: reg, Logger: log}
	if pool != nil {
		qopts.Exec = federation.Executor(pool)
	}
	q := jobs.New(qopts)
	if o.state != "" {
		n, err := q.Restore(o.state)
		if err != nil {
			return err
		}
		if n > 0 {
			log.Info("resumed pending jobs", "count", n, "state", o.state)
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.addrFile != "" {
		if err := obs.AtomicWriteFile(o.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	log.Info("listening", "addr", bound)

	srvOpts := server.Options{Queue: q, Registry: reg, Logger: log}
	if store != nil {
		// Expose this node's run cache to federated peers (GET /v1/cache/{key}).
		srvOpts.Cache = store
	}
	hs := &http.Server{Handler: server.New(srvOpts)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if pool != nil {
		go pool.Run(ctx, o.probeInterval)
	}
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()

	log.Info("draining", "timeout", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	if err := q.Shutdown(drainCtx); err != nil {
		log.Warn("drain timed out; pending work checkpointed")
	}
	if o.state != "" {
		if err := q.Checkpoint(o.state); err != nil {
			return err
		}
		log.Info("checkpointed pending jobs", "count", q.Pending(), "state", o.state)
	}

	if o.manifest != "" {
		m := obs.NewManifest("dvsd", rawArgs)
		m.Config = struct {
			Addr     string `json:"addr"`
			Workers  int    `json:"workers"`
			QueueCap int    `json:"queue_cap"`
			CacheDir string `json:"cache_dir,omitempty"`
			State    string `json:"state,omitempty"`
			Node     string `json:"node,omitempty"`
			Peers    string `json:"peers,omitempty"`
		}{bound, o.workers, o.queueCap, o.cacheDir, o.state, o.node, o.peers}
		snap := reg.Snapshot()
		m.Metrics = &snap
		if store != nil {
			m.Cache = store.Summary()
		}
		m.SetWall(time.Since(start))
		if err := m.WriteFile(o.manifest); err != nil {
			return err
		}
	}
	return nil
}
