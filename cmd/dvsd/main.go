// Command dvsd is the exploration service daemon: an HTTP API (see
// internal/server) over a bounded job queue that executes simulation runs
// and TDVS sweeps, with an optional content-addressed run cache shared with
// the offline tools.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener stops
// accepting, in-flight jobs get -drain-timeout to finish (stragglers are
// interrupted and returned to the queue), and with -state the pending queue
// is checkpointed atomically so the next boot resumes it. With -manifest a
// shutdown manifest records the final metrics and cache summary.
//
// Examples:
//
//	dvsd -addr 127.0.0.1:8377 -cache /var/tmp/dvs-cache
//	dvsd -addr 127.0.0.1:0 -addr-file dvsd.addr -state queue.json
//	dvsctl -addr "$(cat dvsd.addr)" health
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nepdvs/internal/cache"
	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/experiments"
	"nepdvs/internal/jobs"
	"nepdvs/internal/obs"
	"nepdvs/internal/server"
)

type options struct {
	addr         string
	addrFile     string
	workers      int
	queueCap     int
	cacheDir     string
	cacheMax     int
	state        string
	drainTimeout time.Duration
	manifest     string
	logLevel     string
	logFormat    string
}

// newLogger builds the daemon's structured logger on stderr. Format "json"
// emits one JSON object per record (for log shippers); "text" is the
// human-readable slog form.
func newLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("dvsd: -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("dvsd: -log-format %q (want text or json)", format)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8377", "listen address (host:port, port 0 = pick one)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the actual listen address to this file (for port 0)")
	flag.IntVar(&o.workers, "workers", 0, "job workers (0 = one per CPU)")
	flag.IntVar(&o.queueCap, "queue-cap", 64, "max pending jobs before submissions get 503")
	flag.StringVar(&o.cacheDir, "cache", "", "content-addressed run cache directory (shared with nepsim/dvsexplore -cache)")
	flag.IntVar(&o.cacheMax, "cache-max", 0, "evict oldest cache entries past this count (0 = unbounded)")
	flag.StringVar(&o.state, "state", "", "queue checkpoint file: restored at boot, written at shutdown")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
	flag.StringVar(&o.manifest, "manifest", "", "write a shutdown manifest (metrics + cache summary) to this file")
	flag.StringVar(&o.logLevel, "log-level", "info", "log verbosity: debug, info, warn or error")
	flag.StringVar(&o.logFormat, "log-format", "text", "log format: text or json")
	flag.Parse()
	if err := run(o, os.Args[1:]); err != nil {
		cli.Die("dvsd", err)
	}
}

func run(o options, rawArgs []string) error {
	start := time.Now()
	log, err := newLogger(o.logLevel, o.logFormat)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	remove := experiments.ObserveRuns(reg, nil)
	defer remove()

	var store *cache.Store
	if o.cacheDir != "" {
		var err error
		store, err = cache.Open(o.cacheDir, cache.Options{Registry: reg, MaxEntries: o.cacheMax, Logger: log})
		if err != nil {
			return err
		}
		core.SetRunCache(store)
		defer core.SetRunCache(nil)
	}

	q := jobs.New(jobs.Options{Workers: o.workers, Capacity: o.queueCap, Registry: reg, Logger: log})
	if o.state != "" {
		n, err := q.Restore(o.state)
		if err != nil {
			return err
		}
		if n > 0 {
			log.Info("resumed pending jobs", "count", n, "state", o.state)
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if o.addrFile != "" {
		if err := obs.AtomicWriteFile(o.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	log.Info("listening", "addr", bound)

	hs := &http.Server{Handler: server.New(server.Options{Queue: q, Registry: reg, Logger: log})}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()

	log.Info("draining", "timeout", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	if err := q.Shutdown(drainCtx); err != nil {
		log.Warn("drain timed out; pending work checkpointed")
	}
	if o.state != "" {
		if err := q.Checkpoint(o.state); err != nil {
			return err
		}
		log.Info("checkpointed pending jobs", "count", q.Pending(), "state", o.state)
	}

	if o.manifest != "" {
		m := obs.NewManifest("dvsd", rawArgs)
		m.Config = struct {
			Addr     string `json:"addr"`
			Workers  int    `json:"workers"`
			QueueCap int    `json:"queue_cap"`
			CacheDir string `json:"cache_dir,omitempty"`
			State    string `json:"state,omitempty"`
		}{bound, o.workers, o.queueCap, o.cacheDir, o.state}
		snap := reg.Snapshot()
		m.Metrics = &snap
		if store != nil {
			m.Cache = store.Summary()
		}
		m.SetWall(time.Since(start))
		if err := m.WriteFile(o.manifest); err != nil {
			return err
		}
	}
	return nil
}
