// Command dvsctl is the client for the dvsd exploration service: it submits
// runs and sweeps, polls job status, and fetches finished artifacts over
// the HTTP API in internal/server.
//
// Usage:
//
//	dvsctl [-addr host:port] <command> [flags]
//
// Commands:
//
//	config  print a default run configuration as JSON (input for run/sweep)
//	run     submit one simulation (-config FILE, "-" = stdin)
//	sweep   submit a TDVS sweep over -thresholds × -windows
//	jobs     list all jobs
//	status   print one job's status
//	wait     block until a job finishes
//	fetch    download a finished job's result.json
//	timeline download a finished job's stage timeline (Perfetto JSON)
//	assertions download a finished job's assertion report (loc.Report JSON)
//	cancel   cancel a job
//	health   check the daemon is up
//	metrics  dump the daemon's Prometheus metrics
//
// Every invocation mints one request ID (or takes -request-id) and sends it
// as X-Request-ID on each call, so the daemon's structured log ties the
// submission, the job's execution, and any artifact fetches to this one
// client action. Submissions print the ID on stderr for later grep.
//
// Requests retry transient connection errors with capped exponential
// backoff and jitter, and honor Retry-After on 503 (a loaded queue); a 503
// without Retry-After means the daemon is draining and fails fast. With
// "sweep -peers", dvsctl itself coordinates a federated sweep across a
// cluster of daemons (see internal/federation) instead of submitting to
// one.
//
// Examples:
//
//	dvsctl config -bench ipfwdr -level high -cycles 2000000 > cfg.json
//	dvsctl sweep -config cfg.json -thresholds 600,800,1000 -windows 40000,80000 -wait -out result.json
//	dvsctl run -config cfg.json -wait
//	dvsctl status j-000001
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/federation"
	"nepdvs/internal/jobs"
	"nepdvs/internal/server"
	"nepdvs/internal/traffic"
	"nepdvs/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "dvsd address (host:port)")
	reqID := flag.String("request-id", "", "X-Request-ID to send (default: mint one per invocation)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dvsctl [-addr host:port] <command> [flags]\n")
		fmt.Fprintf(os.Stderr, "commands: config run sweep jobs status wait fetch timeline assertions cancel health metrics\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	id := *reqID
	if id == "" {
		id = newRequestID()
	}
	c := client{base: "http://" + *addr, requestID: id}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "config":
		err = cmdConfig(rest)
	case "run":
		err = cmdRun(c, rest)
	case "sweep":
		err = cmdSweep(c, rest)
	case "jobs":
		err = cmdJobs(c)
	case "status":
		err = cmdStatus(c, rest)
	case "wait":
		err = cmdWait(c, rest)
	case "fetch":
		err = cmdFetch(c, rest)
	case "timeline":
		err = cmdTimeline(c, rest)
	case "assertions":
		err = cmdAssertions(c, rest)
	case "cancel":
		err = cmdCancel(c, rest)
	case "health":
		err = cmdHealth(c)
	case "metrics":
		err = cmdMetrics(c)
	default:
		cli.DieUsage("dvsctl", fmt.Errorf("unknown command %q", cmd))
	}
	if err != nil {
		cli.Die("dvsctl", err)
	}
}

// client is a thin JSON-over-HTTP helper bound to one daemon. Every request
// carries the invocation's X-Request-ID and goes through the federation
// client's retry policy: transient connection errors retry with capped
// exponential backoff and jitter, a 503 with Retry-After honors the header,
// and a bare 503 (the daemon draining) fails fast.
type client struct {
	base      string
	requestID string
}

// fed builds the retrying transport for this client.
func (c client) fed() *federation.Client {
	h := http.Header{}
	if c.requestID != "" {
		h.Set(server.RequestIDHeader, c.requestID)
	}
	return &federation.Client{
		Base:      c.base,
		Budget:    4,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  2 * time.Second,
		Header:    h,
	}
}

// newRequestID mints the invocation's trace ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-00000000"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// do performs a request with retries and decodes the response: into out on
// 2xx, into the server's error envelope otherwise.
func (c client) do(method, path string, body, out any) error {
	_, err := c.fed().DoJSON(context.Background(), method, path, body, out)
	if errors.Is(err, federation.ErrDraining) {
		return fmt.Errorf("daemon at %s is shutting down; retry after it restarts", c.base)
	}
	return err
}

// readConfig loads a core.RunConfig from a JSON file ("-" = stdin).
func readConfig(path string) (core.RunConfig, error) {
	var cfg core.RunConfig
	if path == "" {
		return cfg, fmt.Errorf("-config is required (use 'dvsctl config' to generate one)")
	}
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(src, &cfg); err != nil {
		return cfg, fmt.Errorf("parse config %s: %w", path, err)
	}
	return cfg, nil
}

func cmdConfig(args []string) error {
	fs := flag.NewFlagSet("dvsctl config", flag.ExitOnError)
	bench := fs.String("bench", "ipfwdr", "benchmark: ipfwdr, url, nat or md4")
	level := fs.String("level", "high", "traffic level: low, medium or high")
	seed := fs.Int64("seed", 1, "traffic seed")
	cycles := fs.Int64("cycles", 8_000_000, "run length in reference cycles")
	formulas := fs.String("formulas", "", "LOC formulas file to embed")
	fs.Parse(args)

	lv, err := traffic.ParseLevel(*level)
	if err != nil {
		return err
	}
	cfg, err := core.DefaultRunConfig(workload.Name(*bench), lv, *seed)
	if err != nil {
		return err
	}
	cfg.Cycles = *cycles
	if *formulas != "" {
		src, err := os.ReadFile(*formulas)
		if err != nil {
			return err
		}
		cfg.Formulas = string(src)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// submit posts a request, optionally waits for completion and fetches the
// artifact — the shared tail of run and sweep.
func submit(c client, path string, req any, wait bool, out string) error {
	var sub server.SubmitResponse
	if err := c.do(http.MethodPost, path, req, &sub); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dvsctl: job %s (deduped=%v, request-id=%s)\n", sub.ID, sub.Deduped, c.requestID)
	if !wait {
		fmt.Println(sub.ID)
		return nil
	}
	if err := waitJob(c, sub.ID); err != nil {
		return err
	}
	if out == "" {
		fmt.Println(sub.ID)
		return nil
	}
	return fetchArtifact(c, sub.ID, out)
}

func cmdRun(c client, args []string) error {
	fs := flag.NewFlagSet("dvsctl run", flag.ExitOnError)
	config := fs.String("config", "", "run configuration JSON file (- = stdin)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	wait := fs.Bool("wait", false, "block until the job finishes")
	out := fs.String("out", "", "with -wait: write the artifact to this file (- = stdout)")
	fs.Parse(args)
	cfg, err := readConfig(*config)
	if err != nil {
		return err
	}
	return submit(c, "/v1/runs", server.RunRequest{Config: cfg, Priority: *priority}, *wait, *out)
}

func cmdSweep(c client, args []string) error {
	fs := flag.NewFlagSet("dvsctl sweep", flag.ExitOnError)
	config := fs.String("config", "", "base configuration JSON file (- = stdin)")
	thresholds := fs.String("thresholds", "", "comma-separated TDVS thresholds in Mbps")
	windows := fs.String("windows", "", "comma-separated monitor windows in cycles")
	par := fs.Int("par", 0, "parallel points inside the sweep (0 = one per CPU)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	wait := fs.Bool("wait", false, "block until the job finishes")
	out := fs.String("out", "", "with -wait: write the artifact to this file (- = stdout)")
	peers := fs.String("peers", "", "federate from this client across these nodes (name=url or url, comma-separated) instead of submitting to -addr")
	fs.Parse(args)
	cfg, err := readConfig(*config)
	if err != nil {
		return err
	}
	ths, err := parseFloats(*thresholds)
	if err != nil {
		return fmt.Errorf("-thresholds: %w", err)
	}
	wins, err := parseInts(*windows)
	if err != nil {
		return fmt.Errorf("-windows: %w", err)
	}
	if *peers != "" {
		return clientSweep(*peers, cfg, ths, wins, *out)
	}
	req := server.SweepRequest{Config: cfg, Thresholds: ths, Windows: wins, Parallelism: *par, Priority: *priority}
	return submit(c, "/v1/sweeps", req, *wait, *out)
}

// clientSweep federates a sweep from this process: dvsctl itself is the
// coordinator, sharding points across the named nodes, stealing from dead
// ones, and degrading to in-process execution when everyone is down. The
// artifact written is byte-identical to a server-side sweep of the same
// grid.
func clientSweep(peers string, cfg core.RunConfig, ths []float64, wins []int64, out string) error {
	members, err := federation.ParseMembers(peers)
	if err != nil {
		return err
	}
	pool, err := federation.New(federation.Options{Members: members})
	if err != nil {
		return err
	}
	results, sweepErr := pool.Sweep(context.Background(), cfg, ths, wins, nil)
	if results == nil {
		return sweepErr
	}
	if sweepErr != nil {
		fmt.Fprintf(os.Stderr, "dvsctl: %v\n", sweepErr)
	}
	raw, err := json.Marshal(jobs.NewSweepArtifact(results))
	if err != nil {
		return err
	}
	if out == "" || out == "-" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dvsctl: wrote %s (%d bytes)\n", out, len(raw))
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func parseInts(s string) ([]int64, error) {
	if s == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func oneID(cmd string, args []string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: dvsctl %s JOB_ID", cmd)
	}
	return args[0], nil
}

func cmdJobs(c client) error {
	var raw []byte
	if err := c.do(http.MethodGet, "/v1/jobs", nil, &raw); err != nil {
		return err
	}
	return printJSON(raw)
}

func cmdStatus(c client, args []string) error {
	id, err := oneID("status", args)
	if err != nil {
		return err
	}
	var raw []byte
	if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &raw); err != nil {
		return err
	}
	return printJSON(raw)
}

// jobStatus mirrors the status fields wait needs; the full shape lives in
// internal/jobs.
type jobStatus struct {
	State       string `json:"state"`
	PointsDone  int    `json:"points_done"`
	PointsTotal int    `json:"points_total"`
	Err         string `json:"err"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

func waitJob(c client, id string) error {
	for {
		var st jobStatus
		if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &st); err != nil {
			return err
		}
		if terminal(st.State) {
			if st.State != "done" {
				return fmt.Errorf("job %s %s: %s", id, st.State, st.Err)
			}
			return nil
		}
		time.Sleep(150 * time.Millisecond)
	}
}

func cmdWait(c client, args []string) error {
	fs := flag.NewFlagSet("dvsctl wait", flag.ExitOnError)
	timeout := fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	fs.Parse(args)
	id, err := oneID("wait", fs.Args())
	if err != nil {
		return err
	}
	if *timeout > 0 {
		done := make(chan error, 1)
		go func() { done <- waitJob(c, id) }()
		select {
		case err := <-done:
			return err
		case <-time.After(*timeout):
			return fmt.Errorf("job %s still running after %v", id, *timeout)
		}
	}
	return waitJob(c, id)
}

func fetchArtifact(c client, id, out string) error {
	var raw []byte
	if err := c.do(http.MethodGet, "/v1/jobs/"+id+"/artifacts/result.json", nil, &raw); err != nil {
		return err
	}
	if out == "" || out == "-" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dvsctl: wrote %s (%d bytes)\n", out, len(raw))
	return nil
}

func cmdFetch(c client, args []string) error {
	fs := flag.NewFlagSet("dvsctl fetch", flag.ExitOnError)
	out := fs.String("out", "-", "destination file (- = stdout)")
	fs.Parse(args)
	id, err := oneID("fetch", fs.Args())
	if err != nil {
		return err
	}
	return fetchArtifact(c, id, *out)
}

// cmdTimeline downloads a finished job's stage timeline: queue wait,
// execution and artifact write as a Perfetto/Chrome trace-event file.
func cmdTimeline(c client, args []string) error {
	fs := flag.NewFlagSet("dvsctl timeline", flag.ExitOnError)
	out := fs.String("out", "-", "destination file (- = stdout); load it in ui.perfetto.dev")
	fs.Parse(args)
	id, err := oneID("timeline", fs.Args())
	if err != nil {
		return err
	}
	var raw []byte
	if err := c.do(http.MethodGet, "/v1/jobs/"+id+"/timeline", nil, &raw); err != nil {
		return err
	}
	if *out == "" || *out == "-" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dvsctl: wrote %s (%d bytes)\n", *out, len(raw))
	return nil
}

// cmdAssertions downloads a finished job's assertion report: per-formula
// verdicts, violation witnesses, worst offender and violation density
// (loc.Report JSON, byte-identical to the local locheck -report output for
// the same run).
func cmdAssertions(c client, args []string) error {
	fs := flag.NewFlagSet("dvsctl assertions", flag.ExitOnError)
	out := fs.String("out", "-", "destination file (- = stdout)")
	fs.Parse(args)
	id, err := oneID("assertions", fs.Args())
	if err != nil {
		return err
	}
	var raw []byte
	if err := c.do(http.MethodGet, "/v1/jobs/"+id+"/assertions", nil, &raw); err != nil {
		return err
	}
	if *out == "" || *out == "-" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dvsctl: wrote %s (%d bytes)\n", *out, len(raw))
	return nil
}

func cmdCancel(c client, args []string) error {
	id, err := oneID("cancel", args)
	if err != nil {
		return err
	}
	var raw []byte
	if err := c.do(http.MethodDelete, "/v1/jobs/"+id, nil, &raw); err != nil {
		return err
	}
	return printJSON(raw)
}

func cmdHealth(c client) error {
	var raw []byte
	if err := c.do(http.MethodGet, "/healthz", nil, &raw); err != nil {
		return err
	}
	return printJSON(raw)
}

func cmdMetrics(c client) error {
	var raw []byte
	if err := c.do(http.MethodGet, "/metrics", nil, &raw); err != nil {
		return err
	}
	_, err := os.Stdout.Write(raw)
	return err
}

// printJSON re-indents a JSON body for the terminal.
func printJSON(raw []byte) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(raw), "", "  "); err != nil {
		os.Stdout.Write(raw)
		return nil
	}
	buf.WriteByte('\n')
	_, err := buf.WriteTo(os.Stdout)
	return err
}
