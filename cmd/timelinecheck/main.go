// Command timelinecheck validates a Chrome/Perfetto trace-event JSON file
// produced by nepsim -timeline (or the service's per-job export): the file
// must parse, carry thread_name metadata for its tracks, and hold at least
// -min-spans complete ("X") spans on every track named by -tracks. It is
// the CI gate behind `make timeline-smoke` — a refactor that silently stops
// emitting a ME's residency spans fails here, not in a human's Perfetto tab.
//
// Example:
//
//	nepsim -bench ipfwdr -timeline t.json && timelinecheck -tracks me0,me1 t.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nepdvs/internal/cli"
)

func main() {
	var tracks string
	var minSpans int
	flag.StringVar(&tracks, "tracks", "me0,me1,me2,me3,me4,me5",
		"comma-separated track names that must each carry spans")
	flag.IntVar(&minSpans, "min-spans", 1, "minimum complete spans required per listed track")
	flag.Parse()
	if err := run(tracks, minSpans, flag.Args()); err != nil {
		cli.Die("timelinecheck", err)
	}
}

// event is the subset of a traceEvents entry the checks need.
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Tid  int             `json:"tid"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func run(tracks string, minSpans int, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("exactly one timeline file argument")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("%s: not trace-event JSON: %w", args[0], err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: empty traceEvents", args[0])
	}

	// thread_name metadata maps tids back to the recorder's track names.
	names := make(map[int]string)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" || ev.Name != "thread_name" {
			continue
		}
		var meta struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(ev.Args, &meta); err != nil {
			return fmt.Errorf("%s: thread_name metadata: %w", args[0], err)
		}
		names[ev.Tid] = meta.Name
	}
	if len(names) == 0 {
		return fmt.Errorf("%s: no thread_name metadata", args[0])
	}

	spans := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur == nil || *ev.Dur < 0 {
			return fmt.Errorf("%s: span %q on %s has no duration", args[0], ev.Name, names[ev.Tid])
		}
		spans[names[ev.Tid]]++
	}

	var missing []string
	for _, want := range strings.Split(tracks, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		if spans[want] < minSpans {
			missing = append(missing, fmt.Sprintf("%s (%d < %d)", want, spans[want], minSpans))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: tracks short on spans: %s", args[0], strings.Join(missing, ", "))
	}
	fmt.Printf("timelinecheck: OK (%d events, %d tracks, %d spans)\n",
		len(doc.TraceEvents), len(names), total(spans))
	return nil
}

func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
