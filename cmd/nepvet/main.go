// Command nepvet is the repo's three-front static-analysis suite — the
// paper's analyze-before-run methodology applied to the reproduction's own
// three languages:
//
//	nepvet                      lint the repo's Go for determinism hazards
//	nepvet internal/sim cmd/…   lint specific package directories
//	nepvet -asm prog.asm…       lint microengine assembly programs
//	nepvet -loc formulas.loc…   statically analyze LOC assertion formulas
//
// Go rules (det/*) guard the byte-identical-per-seed guarantee: wall-clock
// and global-rand calls inside deterministic packages, map iteration
// feeding serialization without a sort, os.Exit/log.Fatal outside cmd/ and
// internal/cli, and order-sensitive float accumulation. Intentional
// exemptions live rule-by-rule per package in lint.allow; single findings
// can carry an inline "//nepvet:allow <rule> <why>" comment.
//
// Diagnostics print one per line as "file:line:col: [rule] message".
// Exit status: 0 clean, 1 findings, 2 usage or analysis errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nepdvs/internal/cli"
	"nepdvs/internal/core"
	"nepdvs/internal/isa"
	"nepdvs/internal/lint"
	"nepdvs/internal/loc"
)

func main() {
	var (
		asmMode  = flag.Bool("asm", false, "lint microengine assembly files")
		locMode  = flag.Bool("loc", false, "statically analyze LOC formula files (lints + semantic pass)")
		root     = flag.String("root", ".", "repository root for Go linting")
		allow    = flag.String("allow", "", "allowlist file (default <root>/lint.allow)")
		det      = flag.String("det", "", "comma-separated deterministic package dirs (overrides the built-in set; used by fixture tests)")
		noSchema = flag.Bool("no-schema", false, "with -loc: skip annotation schema checking")
	)
	flag.Parse()

	var (
		diags []lint.Diag
		err   error
	)
	switch {
	case *asmMode && *locMode:
		cli.DieUsage("nepvet", fmt.Errorf("use -asm or -loc, not both"))
	case *asmMode:
		diags, err = lintAsmFiles(flag.Args())
	case *locMode:
		sch := core.EventSchema()
		if *noSchema {
			sch = nil
		}
		diags, err = lintLocFiles(flag.Args(), sch)
	default:
		diags, err = lintGoTree(*root, *allow, *det, flag.Args())
	}
	if err != nil {
		cli.DieUsage("nepvet", err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nepvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func lintGoTree(root, allowPath, det string, dirs []string) ([]lint.Diag, error) {
	if allowPath == "" {
		allowPath = filepath.Join(root, "lint.allow")
	}
	al, err := lint.LoadAllowlist(allowPath)
	if err != nil {
		return nil, err
	}
	cfg := lint.GoConfig{Root: root, Allow: al}
	if det != "" {
		cfg.Deterministic = strings.Split(det, ",")
	}
	var target []string
	if len(dirs) > 0 {
		target = dirs
	}
	diags, err := lint.LintGo(cfg, target)
	if err != nil {
		return nil, err
	}
	// A full-tree run also audits the allowlist itself: an entry that
	// exempted nothing is stale and must be deleted.
	if target == nil {
		diags = append(diags, al.Unused()...)
	}
	return diags, nil
}

func lintAsmFiles(files []string) ([]lint.Diag, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("-asm needs at least one assembly file")
	}
	var out []lint.Diag
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		for _, d := range isa.LintSource(name, string(b)) {
			out = append(out, lint.Diag{File: filepath.ToSlash(path), Line: d.Line, Col: 1, Rule: d.Rule, Msg: d.Msg})
		}
	}
	lint.SortDiags(out)
	return out, nil
}

func lintLocFiles(files []string, sch *loc.Schema) ([]lint.Diag, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("-loc needs at least one formula file")
	}
	var out []lint.Diag
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		ds, _ := loc.AnalyzeFile(string(b), sch)
		for _, d := range ds {
			out = append(out, lint.Diag{File: filepath.ToSlash(path), Line: d.Pos.Line, Col: d.Pos.Col, Rule: d.Rule, Msg: d.Msg})
		}
	}
	lint.SortDiags(out)
	return out, nil
}
