// Command trafficgen produces IP packet traffic for the simulator: either a
// packet arrival file (replayable via the traffic package) or the Figure 2
// style day-distribution table.
//
// Examples:
//
//	trafficgen -mbps 900 -ms 13 -seed 1 -o packets.txt
//	trafficgen -level high -ms 13
//	trafficgen -day > fig2.dat
package main

import (
	"flag"
	"fmt"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/sim"
	"nepdvs/internal/traffic"
)

func main() {
	var (
		mbps  = flag.Float64("mbps", 0, "offered load in Mbps (overrides -level)")
		level = flag.String("level", "high", "traffic level: low, medium or high")
		ms    = flag.Float64("ms", 13.336, "duration in milliseconds")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (default stdout)")
		day   = flag.Bool("day", false, "emit the day-distribution table instead of packets")
	)
	flag.Parse()
	if err := run(*mbps, *level, *ms, *seed, *out, *day); err != nil {
		cli.Die("trafficgen", err)
	}
}

func run(mbps float64, level string, ms float64, seed int64, out string, day bool) error {
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if day {
		bins, err := traffic.DefaultDayModel().Bins(0, 24, 5, 60)
		if err != nil {
			return err
		}
		_, err = w.WriteString(traffic.RenderBins(bins))
		return err
	}
	if mbps < 0 {
		return fmt.Errorf("negative rate %v Mbps", mbps)
	}
	cfg := traffic.Config{MeanMbps: mbps, Seed: seed}
	if mbps == 0 {
		lv, err := traffic.ParseLevel(level)
		if err != nil {
			return err
		}
		cfg, err = traffic.DefaultDayModel().SampleLevel(lv, 4, seed)
		if err != nil {
			return err
		}
	}
	g, err := traffic.NewGenerator(cfg)
	if err != nil {
		return err
	}
	if ms <= 0 {
		return fmt.Errorf("non-positive duration %v ms", ms)
	}
	pkts := g.GenerateUntil(sim.Time(ms * float64(sim.Millisecond)))
	if err := traffic.WritePackets(w, pkts); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trafficgen: %d packets, %.1f Mbps over %.3f ms\n",
		len(pkts), traffic.MeasureMbps(pkts, sim.Time(ms*float64(sim.Millisecond))), ms)
	return nil
}
