// Command tracestat summarizes a simulation trace: event counts, covered
// time span, energy and average power, and forwarding progress. Traces may
// be text or binary (auto-detected) and are read from a file argument or
// stdin.
//
// Example:
//
//	nepsim -bench ipfwdr -trace run.trc && tracestat run.trc
package main

import (
	"fmt"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		cli.Die("tracestat", err)
	}
}

func run(args []string) error {
	in := os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one trace file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := trace.OpenSource(in)
	if err != nil {
		return err
	}
	sum, err := trace.Summarize(src)
	if err != nil {
		return err
	}
	fmt.Print(sum)
	return nil
}
