// Command tracestat summarizes a simulation trace: event counts, covered
// time span, energy and average power, and forwarding progress. Traces may
// be text or binary (auto-detected) and are read from a file argument or
// stdin.
//
// With -json the summary is a machine-readable document instead of the
// text report. With -timeline FILE the trace is additionally converted to
// Chrome/Perfetto trace-event JSON (open in ui.perfetto.dev); stored traces
// carry points rather than intervals, so the timeline shows instants and
// counter series — full spans come from nepsim -timeline on a live run.
//
// Examples:
//
//	nepsim -bench ipfwdr -trace run.trc && tracestat run.trc
//	tracestat -json run.trc | jq .forward_mbps
//	tracestat -timeline run.trace.json run.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"nepdvs/internal/cli"
	"nepdvs/internal/span"
	"nepdvs/internal/trace"
)

func main() {
	var jsonOut bool
	var timeline string
	flag.BoolVar(&jsonOut, "json", false, "print the summary as JSON")
	flag.StringVar(&timeline, "timeline", "", "also write a Chrome/Perfetto trace-event JSON file")
	flag.Parse()
	if err := run(jsonOut, timeline, flag.Args()); err != nil {
		cli.Die("tracestat", err)
	}
}

func run(jsonOut bool, timeline string, args []string) error {
	in := os.Stdin
	if len(args) > 1 {
		return fmt.Errorf("at most one trace file argument")
	}
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := trace.OpenSource(in)
	if err != nil {
		return err
	}

	// Sources are single-pass; when the timeline export needs a second pass
	// the events are buffered once and replayed from memory.
	if timeline != "" {
		var evs []trace.Event
		for {
			ev, ok, err := src.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			evs = append(evs, ev)
		}
		events, err := span.FromTrace(&trace.SliceSource{Events: evs})
		if err != nil {
			return err
		}
		if err := span.WriteChromeFile(timeline, events); err != nil {
			return err
		}
		src = &trace.SliceSource{Events: evs}
	}

	sum, err := trace.Summarize(src)
	if err != nil {
		return err
	}
	if jsonOut {
		return sum.WriteJSON(os.Stdout)
	}
	fmt.Print(sum)
	return nil
}
