// Command benchdiff compares two benchmark trajectory points written on
// the internal/perf schema (bench_test.go -benchperf/-benchobs/-benchserve)
// and gates on regressions:
//
//	benchdiff BENCH_sim.json BENCH_gate.json
//	benchdiff -threshold 40 -min-samples 5 old.json new.json
//
// The gate is noise-aware: only the median of each gated metric (ns/op,
// allocs/op) is compared, changes inside the threshold band classify as
// unchanged, and benchmarks with fewer than -min-samples repeats on either
// side never gate. Domain throughput (simulated cycles/sec, packets/sec)
// and B/op are reported as context but never fail the run. A benchmark
// present in the baseline but absent from the new point is a regression —
// benchmarks must not silently disappear.
//
// Environment fingerprint differences (Go version, GOOS/GOARCH, CPU count)
// are warnings, not failures: they mean host-time deltas may reflect the
// machine rather than the code.
//
// Exit status follows the suite convention (internal/cli): 0 clean,
// 3 regression found, 2 schema-version or suite mismatch between the two
// files, 4 unreadable input.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"nepdvs/internal/cli"
	"nepdvs/internal/perf"
)

func main() {
	var (
		threshold  = flag.Float64("threshold", 10, "percent change in a gated metric's median beyond which a benchmark classifies better/worse")
		minSamples = flag.Int("min-samples", 3, "sample floor: benchmarks with fewer repeats on either side never gate")
		quiet      = flag.Bool("quiet", false, "print only regressions and the summary line")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] baseline.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(cli.ExitUsage)
	}

	old := readTrajectory(flag.Arg(0))
	new := readTrajectory(flag.Arg(1))

	d, err := perf.Compare(old, new, perf.DiffOptions{ThresholdPct: *threshold, MinSamples: *minSamples})
	if err != nil {
		cli.DieUsage("benchdiff", err)
	}

	for _, f := range d.EnvMismatch {
		fmt.Printf("warning: env mismatch: %s\n", f)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	for _, e := range d.Entries {
		if *quiet && !e.Regression() {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", e.Bench, e.Metric, formatDelta(e), annotate(e))
	}
	w.Flush()
	fmt.Printf("benchdiff: %s vs %s: %s\n", flag.Arg(0), flag.Arg(1), summarize(d))
	if d.Regressions > 0 {
		cli.DieLint("benchdiff", fmt.Errorf("%d regression(s)", d.Regressions))
	}
}

func readTrajectory(path string) perf.Trajectory {
	t, err := perf.ReadFile(path)
	if err != nil {
		var se *perf.SchemaError
		if errors.As(err, &se) {
			cli.DieUsage("benchdiff", err)
		}
		cli.DieIO("benchdiff", err)
	}
	return t
}

// formatDelta renders the comparison column: medians and percent change
// for a real comparison, one-sided medians for missing/new entries.
func formatDelta(e perf.Entry) string {
	switch e.Class {
	case perf.Missing:
		return fmt.Sprintf("%s -> (gone)", formatVal(e.OldMedian))
	case perf.New:
		return fmt.Sprintf("(none) -> %s", formatVal(e.NewMedian))
	}
	return fmt.Sprintf("%s -> %s (%+.1f%%)", formatVal(e.OldMedian), formatVal(e.NewMedian), e.DeltaPct)
}

// formatVal renders a metric value compactly; trajectory metrics span nine
// orders of magnitude (allocs/op to cycles/sec), so fixed precision is
// hopeless and %g with limited digits is the readable choice.
func formatVal(v float64) string { return fmt.Sprintf("%.4g", v) }

// annotate renders the classification column, marking ungated moves so a
// "worse" on context throughput is visibly not a gate failure.
func annotate(e perf.Entry) string {
	s := string(e.Class)
	switch {
	case e.Regression():
		s += "  [REGRESSION]"
	case (e.Class == perf.Worse || e.Class == perf.Better) && !e.Gated:
		s += "  (context, not gated)"
	case e.Class == perf.LowSamples:
		s += fmt.Sprintf("  (%d vs %d samples)", e.OldSamples, e.NewSamples)
	}
	return s
}

// summarize renders the one-line class census plus the regression count.
func summarize(d perf.Diff) string {
	counts := map[perf.Class]int{}
	for _, e := range d.Entries {
		counts[e.Class]++
	}
	var parts []string
	for _, c := range []perf.Class{perf.Better, perf.Worse, perf.Unchanged, perf.LowSamples, perf.Missing, perf.New} {
		if n := counts[c]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, c))
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "no comparable benchmarks")
	}
	return fmt.Sprintf("%s; %d regression(s)", strings.Join(parts, ", "), d.Regressions)
}
